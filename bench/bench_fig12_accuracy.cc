// Figure 12 — approximation accuracy of Sam and Sam+ with
// eps = delta = 0.01 (empirical sample size 3000, as in the paper's
// Section 6.2), against exact Det+ results on block-zipf data.
//
//   (a) 5-d objects, n = 10 .. 10k
//   (b) 10k objects, d = 2 .. 5
//
// The paper reports absolute errors well below eps = 0.01 for both
// algorithms; the counters avg_abs_error / max_abs_error reproduce that
// series.

#include <cmath>

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

void RunAccuracy(benchmark::State& state, std::size_t objects,
                 std::size_t dimensions, bool preprocess) {
  Dataset data =
      GenerateBlockZipf(BlockZipfConfig(objects, dimensions)).value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  auto solver = SkylineSolver::Create(data, prefs).value();
  std::vector<ObjectId> targets =
      SampleTargets(data.size(), TargetCount(data.size()));

  SolverOptions det_plus;
  std::vector<double> reference;
  for (ObjectId target : targets) {
    reference.push_back(solver.Exact(target, det_plus).value());
  }

  SolverOptions options;
  options.preprocess = preprocess;
  options.monte_carlo.samples = 3000;  // the paper's empirical size

  double avg_error = 0.0;
  double max_error = 0.0;
  for (auto _ : state) {
    avg_error = 0.0;
    max_error = 0.0;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      options.monte_carlo.seed = 31 * i + 11;
      double estimate = solver.MonteCarlo(targets[i], options).value();
      double error = std::abs(estimate - reference[i]);
      avg_error += error;
      max_error = std::max(max_error, error);
    }
    avg_error /= static_cast<double>(targets.size());
    Keep(avg_error);
  }
  state.counters["avg_abs_error"] = avg_error;
  state.counters["max_abs_error"] = max_error;
}

void BM_Fig12a_Sam_VaryN(benchmark::State& state) {
  RunAccuracy(state, static_cast<std::size_t>(state.range(0)), 5, false);
}
void BM_Fig12a_SamPlus_VaryN(benchmark::State& state) {
  RunAccuracy(state, static_cast<std::size_t>(state.range(0)), 5, true);
}
void BM_Fig12b_Sam_VaryD(benchmark::State& state) {
  RunAccuracy(state, 10000, static_cast<std::size_t>(state.range(0)), false);
}
void BM_Fig12b_SamPlus_VaryD(benchmark::State& state) {
  RunAccuracy(state, 10000, static_cast<std::size_t>(state.range(0)), true);
}

BENCHMARK(BM_Fig12a_Sam_VaryN)
    ->Arg(10)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig12a_SamPlus_VaryN)
    ->Arg(10)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig12b_Sam_VaryD)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig12b_SamPlus_VaryD)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Figure 12: approximation accuracy, eps=delta=0.01, "
              "3000 samples (block-zipf; reference = Det+) ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
