// Theorem 1 in executable form — #DNF counting through the skyline
// reduction, compared with direct enumeration.
//
// Not a figure of the paper, but the constructive content of its
// hardness proof: counting satisfying assignments of a positive DNF
// formula equals (1 - sky(O)) / mu on the reduced instance. The bench
// measures both directions on random formulas; enumeration is O(2^d)
// in the number of literals while the skyline route is exponential in
// the number of CLAUSES — so each wins on its own side, which is the
// point of a many-one reduction, not a speedup.

#include "bench_util.h"

#include "src/reduction/dnf.h"
#include "src/util/random.h"

namespace {

using namespace skypref;

PositiveDnf RandomFormula(unsigned literals, unsigned clauses,
                          std::uint64_t seed) {
  Rng rng(seed);
  PositiveDnf formula;
  formula.num_literals = literals;
  for (unsigned c = 0; c < clauses; ++c) {
    std::vector<unsigned> clause;
    for (unsigned x = 0; x < literals; ++x) {
      if (rng.NextBernoulli(0.3)) clause.push_back(x);
    }
    if (clause.empty()) {
      clause.push_back(static_cast<unsigned>(rng.NextBounded(literals)));
    }
    formula.clauses.push_back(std::move(clause));
  }
  return formula;
}

void BM_DnfCount_BruteForce(benchmark::State& state) {
  PositiveDnf formula =
      RandomFormula(static_cast<unsigned>(state.range(0)),
                    static_cast<unsigned>(state.range(1)), 5);
  std::uint64_t count = 0;
  for (auto _ : state) {
    count = BruteForceCountSatisfying(formula).value();
    skypref::bench::Keep(count);
  }
  state.counters["count"] = static_cast<double>(count);
}

void BM_DnfCount_ViaSkyline(benchmark::State& state) {
  PositiveDnf formula =
      RandomFormula(static_cast<unsigned>(state.range(0)),
                    static_cast<unsigned>(state.range(1)), 5);
  BigInt count;
  for (auto _ : state) {
    count = CountSatisfyingViaSkyline(formula).value();
    skypref::bench::Keep(count);
  }
  state.counters["count"] = count.ToDouble();
}

// Args: {literals, clauses}.
BENCHMARK(BM_DnfCount_BruteForce)
    ->Args({8, 4})->Args({12, 6})->Args({16, 8})->Args({20, 10})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DnfCount_ViaSkyline)
    ->Args({8, 4})->Args({12, 6})->Args({16, 8})->Args({20, 10})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Theorem 1: #DNF counting via the skyline reduction vs "
              "direct enumeration (matching counts certify the "
              "reduction) ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
