#ifndef SKYPREF_BENCH_BENCH_UTIL_H_
#define SKYPREF_BENCH_BENCH_UTIL_H_

/// \file
/// Shared plumbing for the per-figure benchmark binaries.
///
/// Every binary regenerates one table/figure of the paper's evaluation
/// section (see DESIGN.md for the index and EXPERIMENTS.md for measured
/// results). By default the benches run at "quick" scale — the same
/// workloads as the paper with cardinalities and cutoffs reduced so the
/// whole suite finishes in minutes; set SKYPREF_BENCH_SCALE=full to run
/// the paper's 10^5-object configurations with 10^4-second-style cutoffs.

#include <cstdlib>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/skypref.h"
#include "src/util/random.h"

namespace skypref::bench {

/// Keeps a computed value alive without benchmark::DoNotOptimize: the
/// installed google-benchmark's "+m,r"-constraint inline asm miscompiles
/// under GCC -O3 and corrupts the operand (upstream issue #1340 family —
/// observed here as denormal garbage in otherwise exact 0/1 arithmetic).
/// An input-only operand with a memory clobber is safe.
template <typename T>
inline void Keep(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

/// True when SKYPREF_BENCH_SCALE=full.
inline bool FullScale() {
  const char* scale = std::getenv("SKYPREF_BENCH_SCALE");
  return scale != nullptr && std::string(scale) == "full";
}

/// Wall-clock cutoff for exact solvers (the paper used 10^4 seconds).
inline double ExactCutoffSeconds() { return FullScale() ? 600.0 : 10.0; }

/// Number of target objects to average over (the paper averages over up
/// to 1000 objects; the shapes stabilize with far fewer).
inline std::size_t TargetCount(std::size_t dataset_size) {
  std::size_t budget = FullScale() ? 50 : 8;
  return dataset_size < budget ? dataset_size : budget;
}

/// Deterministic sample of distinct target objects.
inline std::vector<ObjectId> SampleTargets(std::size_t dataset_size,
                                           std::size_t count,
                                           std::uint64_t seed = 0x7a26e75) {
  Rng rng(seed);
  std::vector<ObjectId> targets;
  if (count >= dataset_size) {
    for (ObjectId i = 0; i < dataset_size; ++i) targets.push_back(i);
    return targets;
  }
  // Floyd's algorithm would be fancier; rejection is fine at this scale.
  std::vector<bool> chosen(dataset_size, false);
  while (targets.size() < count) {
    ObjectId id = static_cast<ObjectId>(rng.NextBounded(dataset_size));
    if (!chosen[id]) {
      chosen[id] = true;
      targets.push_back(id);
    }
  }
  return targets;
}

/// The paper's synthetic preference setup: probabilities drawn uniformly
/// from [0,1], one independent draw per value pair, O(1) memory.
inline HashedPreferenceModel PaperPreferences(std::uint64_t seed = 2013) {
  return HashedPreferenceModel(seed,
                               HashedPreferenceModel::Style::kTotalUniform);
}

/// Standard block-zipf configuration used across the figures (Table 1:
/// zipf parameter 1; block geometry chosen so that Det+ has per-block
/// subproblems, as in the paper's 10^5-object runs).
inline constexpr ValueId kBlockValues = 6;

inline BlockZipfOptions BlockZipfConfig(std::size_t objects,
                                        std::size_t dimensions) {
  BlockZipfOptions options;
  options.objects = objects;
  options.dimensions = dimensions;
  options.block_size = 12;
  options.values_per_block = kBlockValues;
  options.theta = 1.0;
  options.seed = 7;
  return options;
}

/// Block-zipf preference semantics: random [0,1] preferences within a
/// block, incomparable across blocks (see BlockLocalPreferenceModel).
inline BlockLocalPreferenceModel BlockPrefs(const PreferenceModel& base) {
  return BlockLocalPreferenceModel(base, kBlockValues);
}

/// The figure benches run Det and Det+ exactly as published (Algorithm 1
/// with the sharing technique only); the zero-subtree pruning this
/// library adds on top is measured separately in bench_ablation.
inline ExactOptions PaperExactOptions(double time_limit_seconds) {
  ExactOptions options;
  options.prune_zero = false;
  options.time_limit_seconds = time_limit_seconds;
  return options;
}

/// Standard uniform configuration (Table 1: n in 10..50, d in 2..5).
inline UniformOptions UniformConfig(std::size_t objects,
                                    std::size_t dimensions) {
  UniformOptions options;
  options.objects = objects;
  options.dimensions = dimensions;
  options.values_per_dimension = 10;
  options.seed = 7;
  return options;
}

}  // namespace skypref::bench

#endif  // SKYPREF_BENCH_BENCH_UTIL_H_
