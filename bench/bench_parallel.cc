// Extension bench — thread-parallel solver variants (src/core/parallel.h).
//
// Det+ parallelizes over Theorem-4 groups, sampling over world chunks;
// results are bit-identical to the serial path for every thread count
// (asserted in tests; here we measure the scaling).

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

void BM_Parallel_DetPlus(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  Dataset data = GenerateBlockZipf(BlockZipfConfig(20000, 5)).value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  ThreadPool pool(threads);
  ExactOptions options;
  options.prune_zero = false;  // as published
  std::vector<ObjectId> targets = SampleTargets(data.size(), 4);
  double sky = 0.0;
  for (auto _ : state) {
    for (ObjectId target : targets) {
      sky = ParallelExactSkylineProbability(data, target, prefs, pool,
                                            options)
                .value();
      Keep(sky);
    }
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["sky_last"] = sky;
}

void BM_Parallel_AllWorlds(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  BlockZipfOptions gen = BlockZipfConfig(1000, 3);
  gen.block_size = 10;
  Dataset data = GenerateBlockZipf(gen).value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  ThreadPool pool(threads);
  AllWorldsOptions options;
  options.samples = 2000;
  options.seed = 7;
  double checksum = 0.0;
  for (auto _ : state) {
    auto all =
        ParallelEstimateAllSkylineProbabilities(data, prefs, pool, options)
            .value();
    checksum = 0.0;
    for (double estimate : all.estimates) checksum += estimate;
    Keep(checksum);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["expected_skyline_objects"] = checksum;
}

BENCHMARK(BM_Parallel_DetPlus)
    ->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Parallel_AllWorlds)
    ->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Extension: thread scaling of Det+ (per-group) and "
              "all-objects sampling (per-chunk); arg = worker threads, "
              "0 = inline ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
