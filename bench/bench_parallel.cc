// Extension bench — thread-parallel solver variants (src/core/parallel.h).
//
// Det+ parallelizes over Theorem-4 groups, sampling over world chunks;
// results are bit-identical to the serial path for every thread count
// (asserted in tests; here we measure the scaling).

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

void BM_Parallel_DetPlus(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  Dataset data = GenerateBlockZipf(BlockZipfConfig(20000, 5)).value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  ThreadPool pool(threads);
  ExactOptions options;
  options.prune_zero = false;  // as published
  std::vector<ObjectId> targets = SampleTargets(data.size(), 4);
  double sky = 0.0;
  for (auto _ : state) {
    for (ObjectId target : targets) {
      sky = ParallelExactSkylineProbability(data, target, prefs, pool,
                                            options)
                .value();
      Keep(sky);
    }
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["sky_last"] = sky;
}

void BM_Parallel_AllWorlds(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  BlockZipfOptions gen = BlockZipfConfig(1000, 3);
  gen.block_size = 10;
  Dataset data = GenerateBlockZipf(gen).value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  ThreadPool pool(threads);
  AllWorldsOptions options;
  options.samples = 2000;
  options.seed = 7;
  double checksum = 0.0;
  for (auto _ : state) {
    auto all =
        ParallelEstimateAllSkylineProbabilities(data, prefs, pool, options)
            .value();
    checksum = 0.0;
    for (double estimate : all.estimates) checksum += estimate;
    Keep(checksum);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["expected_skyline_objects"] = checksum;
}

// Sam thread scaling: one target, worlds fanned out in fixed blocks over
// the pool. skyline_worlds is exported so runs at different arg values
// can be diffed for the bit-identity contract.
void BM_Parallel_BlockSam(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  Dataset data = GenerateBlockZipf(BlockZipfConfig(2000, 3)).value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  ThreadPool pool(threads);
  MonteCarloOptions options;
  options.samples = FullScale() ? 2000000 : 200000;
  options.seed = 7;
  MonteCarloResult result;
  for (auto _ : state) {
    result =
        BlockMonteCarloSkylineProbability(data, 0, prefs, pool, options)
            .value();
    Keep(result.skyline_worlds);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["skyline_worlds"] =
      static_cast<double>(result.skyline_worlds);
  state.counters["sky_last"] = result.estimate;
}

// World-shared batch Sam: every target estimated from the same sampled
// worlds, one ternary draw per distinct value pair per world.
void BM_Parallel_BatchSam(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  Dataset data = GenerateBlockZipf(BlockZipfConfig(600, 3)).value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  ThreadPool pool(threads);
  SolverOptions options;
  options.monte_carlo.samples = FullScale() ? 100000 : 10000;
  options.monte_carlo.seed = 7;
  BatchSamStats stats;
  double checksum = 0.0;
  for (auto _ : state) {
    auto estimates =
        BatchMonteCarloSkylineProbabilities(data, prefs, pool, options,
                                            &stats)
            .value();
    checksum = 0.0;
    for (double estimate : estimates) checksum += estimate;
    Keep(checksum);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["pair_draws"] = static_cast<double>(stats.pair_draws);
  state.counters["expected_skyline_objects"] = checksum;
}

BENCHMARK(BM_Parallel_DetPlus)
    ->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Parallel_AllWorlds)
    ->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Parallel_BlockSam)
    ->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Parallel_BatchSam)
    ->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Extension: thread scaling of Det+ (per-group), "
              "all-objects sampling (per-chunk), and block Sam "
              "(per-world-block); arg = worker threads, 0 = inline ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
