// Extension bench — the top-k race (src/core/topk_race.h), the paper's
// named future-work direction (generic top-k evaluation a la Re/Dalvi/
// Suciu on top of sampling).
//
// Compared against the fixed-budget route (estimate every object to the
// union-bound precision, then sort): the race settles clearly-in and
// clearly-out objects early and focuses worlds on the boundary, so its
// total evaluations are far below worlds * n.

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

Dataset MakeData(std::size_t objects) {
  BlockZipfOptions options = BlockZipfConfig(objects, 3);
  options.block_size = 10;
  options.values_per_block = 6;
  return GenerateBlockZipf(options).value();
}

void BM_TopK_Race(benchmark::State& state) {
  Dataset data = MakeData(static_cast<std::size_t>(state.range(0)));
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  TopKRaceOptions options;
  options.seed = 5;
  options.epsilon_floor = 0.02;

  TopKRaceResult result;
  for (auto _ : state) {
    result = TopKSkylineRace(data, prefs, 10, options).value();
    Keep(result.worlds);
  }
  state.counters["worlds"] = static_cast<double>(result.worlds);
  state.counters["evaluations"] = static_cast<double>(result.evaluations);
  state.counters["full_scan_equivalent"] =
      static_cast<double>(result.worlds) * static_cast<double>(data.size());
  state.counters["resolved"] = result.resolved ? 1.0 : 0.0;
}

void BM_TopK_FixedBudget(benchmark::State& state) {
  Dataset data = MakeData(static_cast<std::size_t>(state.range(0)));
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  AllWorldsOptions options;
  options.epsilon = 0.01;  // comparable to the race's epsilon_floor / 2
  options.delta = 0.01;
  options.seed = 5;

  std::size_t count = 0;
  for (auto _ : state) {
    auto top = TopKSkyline(data, prefs, 10, options).value();
    count = top.size();
    Keep(count);
  }
  state.counters["worlds"] = static_cast<double>(
      AllWorldsSampleSize(options.epsilon, options.delta, data.size()));
}

BENCHMARK(BM_TopK_Race)
    ->Arg(200)->Arg(1000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_TopK_FixedBudget)
    ->Arg(200)->Arg(1000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Extension: top-k skyline-probability race vs "
              "fixed-budget estimation (k=10) ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
