// Figure 14 — efficiency of the approximate algorithms (+ Det+ as the
// reference series) while varying dimensionality.
//
//   (a) Uniform, n = 50, d = 2..5
//   (b) Block-zipf, n = 10k, d = 2..5

#include <chrono>

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

enum class Algo { kDetPlus, kSam, kSamPlus };

void RunTimed(benchmark::State& state, const Dataset& data,
              const PreferenceModel& prefs, Algo algo) {
  auto solver = SkylineSolver::Create(data, prefs).value();
  std::vector<ObjectId> targets =
      SampleTargets(data.size(), TargetCount(data.size()));

  SolverOptions options;
  options.preprocess = algo != Algo::kSam;
  options.monte_carlo.samples = 3000;
  options.exact = PaperExactOptions(ExactCutoffSeconds() /
                                    static_cast<double>(targets.size()));

  double elapsed_ms = 0.0;
  std::uint64_t solves = 0;
  for (auto _ : state) {
    std::size_t i = 0;
    for (ObjectId target : targets) {
      options.monte_carlo.seed = 13 * i++ + 5;
      auto start = std::chrono::steady_clock::now();
      Result<double> sky = algo == Algo::kDetPlus
                               ? solver.Exact(target, options)
                               : solver.MonteCarlo(target, options);
      elapsed_ms += std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      ++solves;
      if (!sky.ok()) {
        state.counters["dnf"] = 1;
        state.SkipWithError(("cutoff: " + sky.status().ToString()).c_str());
        return;
      }
      Keep(sky.value());
    }
  }
  state.counters["per_target_ms"] = elapsed_ms / static_cast<double>(solves);
}

void BM_Fig14a_DetPlus_Uniform(benchmark::State& state) {
  Dataset data = GenerateUniform(
                     UniformConfig(50, static_cast<std::size_t>(state.range(0))))
                     .value();
  HashedPreferenceModel prefs = PaperPreferences();
  RunTimed(state, data, prefs, Algo::kDetPlus);
}
void BM_Fig14a_Sam_Uniform(benchmark::State& state) {
  Dataset data = GenerateUniform(
                     UniformConfig(50, static_cast<std::size_t>(state.range(0))))
                     .value();
  HashedPreferenceModel prefs = PaperPreferences();
  RunTimed(state, data, prefs, Algo::kSam);
}
void BM_Fig14a_SamPlus_Uniform(benchmark::State& state) {
  Dataset data = GenerateUniform(
                     UniformConfig(50, static_cast<std::size_t>(state.range(0))))
                     .value();
  HashedPreferenceModel prefs = PaperPreferences();
  RunTimed(state, data, prefs, Algo::kSamPlus);
}

void BM_Fig14b_DetPlus_BlockZipf(benchmark::State& state) {
  Dataset data =
      GenerateBlockZipf(
          BlockZipfConfig(10000, static_cast<std::size_t>(state.range(0))))
          .value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  RunTimed(state, data, prefs, Algo::kDetPlus);
}
void BM_Fig14b_Sam_BlockZipf(benchmark::State& state) {
  Dataset data =
      GenerateBlockZipf(
          BlockZipfConfig(10000, static_cast<std::size_t>(state.range(0))))
          .value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  RunTimed(state, data, prefs, Algo::kSam);
}
void BM_Fig14b_SamPlus_BlockZipf(benchmark::State& state) {
  Dataset data =
      GenerateBlockZipf(
          BlockZipfConfig(10000, static_cast<std::size_t>(state.range(0))))
          .value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  RunTimed(state, data, prefs, Algo::kSamPlus);
}

BENCHMARK(BM_Fig14a_DetPlus_Uniform)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig14a_Sam_Uniform)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig14a_SamPlus_Uniform)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig14b_DetPlus_BlockZipf)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig14b_Sam_BlockZipf)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig14b_SamPlus_BlockZipf)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Figure 14: approximate algorithms (+ Det+ reference), "
              "running time vs d (3000 samples) ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
