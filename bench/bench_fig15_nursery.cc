// Figure 15 — evaluation on the real data set (UCI Nursery, regenerated
// as the full Cartesian product it is; see DESIGN.md §5).
//
//   (a) running time of Det+, Sam, Sam+ at d = 4 and d = 8
//   (b) absolute error of Sam and Sam+ against Det+
//
// The paper's observations reproduced here: Det is hopeless (omitted
// there, DNF'd here), while Det+ remains fast despite the exponential
// worst case because absorption collapses the full-product dataset to a
// handful of per-dimension rivals.

#include <chrono>
#include <cmath>

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

enum class Algo { kDet, kDetPlus, kSam, kSamPlus };

void RunNursery(benchmark::State& state, Algo algo) {
  NurseryVariant nursery =
      GenerateNurseryProjection(static_cast<std::size_t>(state.range(0)))
          .value();
  const Dataset& data = nursery.dataset;
  HashedPreferenceModel prefs = PaperPreferences();
  auto solver = SkylineSolver::Create(data, prefs).value();
  std::vector<ObjectId> targets =
      SampleTargets(data.size(), TargetCount(data.size()));

  SolverOptions options;
  options.preprocess = algo == Algo::kDetPlus || algo == Algo::kSamPlus;
  options.monte_carlo.samples = 3000;
  options.exact.time_limit_seconds =
      ExactCutoffSeconds() / static_cast<double>(targets.size());

  // Exact reference for the error series (always feasible via Det+).
  std::vector<double> reference;
  if (algo == Algo::kSam || algo == Algo::kSamPlus) {
    SolverOptions det_plus;
    for (ObjectId target : targets) {
      reference.push_back(solver.Exact(target, det_plus).value());
    }
  }

  double elapsed_ms = 0.0;
  double sum_error = 0.0;
  double max_error = 0.0;
  std::uint64_t solves = 0;
  for (auto _ : state) {
    std::size_t i = 0;
    for (ObjectId target : targets) {
      options.monte_carlo.seed = 101 * i + 7;
      auto start = std::chrono::steady_clock::now();
      Result<double> sky =
          (algo == Algo::kDet || algo == Algo::kDetPlus)
              ? solver.Exact(target, options)
              : solver.MonteCarlo(target, options);
      elapsed_ms += std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      ++solves;
      if (!sky.ok()) {
        state.counters["dnf"] = 1;
        state.SkipWithError(("cutoff: " + sky.status().ToString()).c_str());
        return;
      }
      if (!reference.empty()) {
        double error = std::abs(sky.value() - reference[i]);
        sum_error += error;
        max_error = std::max(max_error, error);
      }
      ++i;
    }
  }
  state.counters["per_target_ms"] = elapsed_ms / static_cast<double>(solves);
  if (!reference.empty()) {
    state.counters["avg_abs_error"] =
        sum_error / static_cast<double>(solves);
    state.counters["max_abs_error"] = max_error;
  }
}

void BM_Fig15_Det(benchmark::State& state) { RunNursery(state, Algo::kDet); }
void BM_Fig15_DetPlus(benchmark::State& state) {
  RunNursery(state, Algo::kDetPlus);
}
void BM_Fig15_Sam(benchmark::State& state) { RunNursery(state, Algo::kSam); }
void BM_Fig15_SamPlus(benchmark::State& state) {
  RunNursery(state, Algo::kSamPlus);
}

// d=4 is the 240-object distinct projection; d=8 the full 12,960 objects.
BENCHMARK(BM_Fig15_Det)->Arg(4)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig15_DetPlus)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig15_Sam)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig15_SamPlus)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Figure 15: real data (Nursery), running time and "
              "absolute error at d=4 and d=8 ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
