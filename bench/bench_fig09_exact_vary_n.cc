// Figure 9 — efficiency of the exact algorithms while varying the number
// of objects.
//
//   (a) Uniform, 5-d, n = 10..50: both Det and Det+ are exponential; the
//       paper reports neither finishes n > 50 within 10^4 s. Runs that
//       exceed the cutoff report the counter dnf=1 (did-not-finish) and
//       are skipped, mirroring the paper's missing points.
//   (b) Block-zipf, 5-d, n = 10..100k: Det dies early, but absorption +
//       partition let Det+ solve 10^5 objects (quick scale: 2*10^4).
//
// Reported per_target_ms is the wall time per target object, averaged
// over a fixed sample of targets — the paper's methodology (averages
// over up to 1000 objects).

#include <chrono>

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

void RunExact(benchmark::State& state, const Dataset& data,
              const PreferenceModel& prefs, bool preprocess) {
  auto solver = SkylineSolver::Create(data, prefs).value();
  std::vector<ObjectId> targets =
      SampleTargets(data.size(), TargetCount(data.size()));

  SolverOptions options;
  options.preprocess = preprocess;
  options.exact = PaperExactOptions(ExactCutoffSeconds() /
                                    static_cast<double>(targets.size()));

  std::uint64_t subsets = 0;
  double elapsed_ms = 0.0;
  std::uint64_t solves = 0;
  for (auto _ : state) {
    for (ObjectId target : targets) {
      SolveStats stats;
      auto start = std::chrono::steady_clock::now();
      auto sky = solver.Exact(target, options, &stats);
      elapsed_ms += std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      subsets += stats.subsets_visited;
      ++solves;
      if (!sky.ok()) {
        state.counters["dnf"] = 1;
        state.SkipWithError(("cutoff: " + sky.status().ToString()).c_str());
        return;
      }
      Keep(sky.value());
    }
  }
  state.counters["targets"] = static_cast<double>(targets.size());
  state.counters["per_target_ms"] = elapsed_ms / static_cast<double>(solves);
  state.counters["subsets_per_target"] =
      static_cast<double>(subsets) / static_cast<double>(solves);
}

void BM_Fig09a_Det_Uniform(benchmark::State& state) {
  Dataset data = GenerateUniform(
                     UniformConfig(static_cast<std::size_t>(state.range(0)), 5))
                     .value();
  HashedPreferenceModel prefs = PaperPreferences();
  RunExact(state, data, prefs, /*preprocess=*/false);
}

void BM_Fig09a_DetPlus_Uniform(benchmark::State& state) {
  Dataset data = GenerateUniform(
                     UniformConfig(static_cast<std::size_t>(state.range(0)), 5))
                     .value();
  HashedPreferenceModel prefs = PaperPreferences();
  RunExact(state, data, prefs, /*preprocess=*/true);
}

void BM_Fig09b_Det_BlockZipf(benchmark::State& state) {
  Dataset data =
      GenerateBlockZipf(
          BlockZipfConfig(static_cast<std::size_t>(state.range(0)), 5))
          .value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  RunExact(state, data, prefs, /*preprocess=*/false);
}

void BM_Fig09b_DetPlus_BlockZipf(benchmark::State& state) {
  Dataset data =
      GenerateBlockZipf(
          BlockZipfConfig(static_cast<std::size_t>(state.range(0)), 5))
          .value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  RunExact(state, data, prefs, /*preprocess=*/true);
}

BENCHMARK(BM_Fig09a_Det_Uniform)
    ->Arg(10)->Arg(20)->Arg(30)->Arg(40)->Arg(50)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig09a_DetPlus_Uniform)
    ->Arg(10)->Arg(20)->Arg(30)->Arg(40)->Arg(50)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig09b_Det_BlockZipf)
    ->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig09b_DetPlus_BlockZipf)
    ->Arg(10)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Figure 9: exact algorithms, running time vs n "
              "(5-d; cutoff %.0fs per series point) ==\n",
              skypref::bench::ExactCutoffSeconds());
  // The largest block-zipf point scales with SKYPREF_BENCH_SCALE.
  benchmark::RegisterBenchmark("BM_Fig09b_DetPlus_BlockZipf_Max",
                               &BM_Fig09b_DetPlus_BlockZipf)
      ->Arg(skypref::bench::FullScale() ? 100000 : 20000)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
