// Figure 11 — absolute error of Sam and Sam+ as a function of the sample
// size (block-zipf, 5-d, 100k objects in the paper; 10k at quick scale).
//
// The reference value is Det+ (exact — partition makes it feasible on
// block-zipf). The paper's observation reproduced here: although the
// Hoeffding bound for eps = delta = 0.01 demands 26,492 samples, 3000 is
// already enough to satisfy the 0.01 error bound empirically.

#include <chrono>
#include <cmath>

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

struct Fig11Fixture {
  Fig11Fixture()
      : data(GenerateBlockZipf(
                 BlockZipfConfig(FullScale() ? 100000 : 10000, 5))
                 .value()),
        base(PaperPreferences()),
        prefs(BlockPrefs(base)) {
    solver = new SkylineSolver(
        SkylineSolver::Create(data, prefs).value());
    targets = SampleTargets(data.size(), TargetCount(data.size()));
    SolverOptions det_plus;
    for (ObjectId target : targets) {
      reference.push_back(solver->Exact(target, det_plus).value());
    }
  }

  Dataset data;
  HashedPreferenceModel base;
  BlockLocalPreferenceModel prefs;
  SkylineSolver* solver = nullptr;
  std::vector<ObjectId> targets;
  std::vector<double> reference;
};

Fig11Fixture& Fixture() {
  static Fig11Fixture* fixture = new Fig11Fixture();
  return *fixture;
}

void RunSampled(benchmark::State& state, bool preprocess) {
  Fig11Fixture& fixture = Fixture();
  const std::uint64_t samples = static_cast<std::uint64_t>(state.range(0));
  SolverOptions options;
  options.preprocess = preprocess;
  options.monte_carlo.samples = samples;

  double max_error = 0.0;
  double sum_error = 0.0;
  for (auto _ : state) {
    max_error = 0.0;
    sum_error = 0.0;
    for (std::size_t i = 0; i < fixture.targets.size(); ++i) {
      options.monte_carlo.seed = 1000 + i;
      double estimate =
          fixture.solver->MonteCarlo(fixture.targets[i], options).value();
      double error = std::abs(estimate - fixture.reference[i]);
      max_error = std::max(max_error, error);
      sum_error += error;
    }
    Keep(sum_error);
  }
  state.counters["avg_abs_error"] =
      sum_error / static_cast<double>(fixture.targets.size());
  state.counters["max_abs_error"] = max_error;
}

void BM_Fig11_Sam(benchmark::State& state) { RunSampled(state, false); }
void BM_Fig11_SamPlus(benchmark::State& state) { RunSampled(state, true); }

BENCHMARK(BM_Fig11_Sam)
    ->Arg(100)->Arg(300)->Arg(1000)->Arg(3000)->Arg(10000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig11_SamPlus)
    ->Arg(100)->Arg(300)->Arg(1000)->Arg(3000)->Arg(10000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Figure 11: absolute error vs sample size "
              "(block-zipf, 5-d, n=%s; reference = Det+) ==\n",
              skypref::bench::FullScale() ? "100k" : "10k");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
