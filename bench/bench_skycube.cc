// Extension bench — the probabilistic skycube (src/core/subspace.h):
// sky_S(O) for every non-empty subspace S of the dimensions.
//
// Workload: the Nursery projections (the paper's real data), one target.
// Cells are independent Det+ solves on projected instances; absorption
// collapses each projected full-product instance the same way it does
// the full space, so even the 2^8 - 1 = 255 cells of the full dataset
// stay cheap.

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

void BM_Skycube_Nursery(benchmark::State& state) {
  NurseryVariant nursery =
      GenerateNurseryProjection(static_cast<std::size_t>(state.range(0)))
          .value();
  HashedPreferenceModel prefs = PaperPreferences();
  const ObjectId target = nursery.dataset.size() / 2;

  std::size_t cells = 0;
  double full_space = 0.0;
  for (auto _ : state) {
    auto cube =
        ProbabilisticSkycube(nursery.dataset, target, prefs).value();
    cells = cube.size();
    full_space = cube.back().probability;
    Keep(full_space);
  }
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["full_space_sky"] = full_space;
}

void BM_Skycube_BlockZipf(benchmark::State& state) {
  Dataset data =
      GenerateBlockZipf(
          BlockZipfConfig(1000, static_cast<std::size_t>(state.range(0))))
          .value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);

  std::size_t cells = 0;
  for (auto _ : state) {
    auto cube = ProbabilisticSkycube(data, 0, prefs).value();
    cells = cube.size();
    Keep(cells);
  }
  state.counters["cells"] = static_cast<double>(cells);
}

BENCHMARK(BM_Skycube_Nursery)
    ->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Skycube_BlockZipf)
    ->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Extension: probabilistic skycube — sky(O) in every "
              "subspace (2^d - 1 cells) ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
