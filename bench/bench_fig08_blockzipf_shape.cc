// Figure 8 — the block-zipf distribution under correlated and
// anti-correlated preferences.
//
// The paper's point: with uncertain preferences, "correlated" and
// "anti-correlated" are properties of the PREFERENCES, not the data —
// the same block-zipf dataset plays both roles. The figure itself is a
// scatter plot; this bench regenerates its quantitative content:
//
//   * the zipf skew of the generated values (mass of the top ranks), and
//   * the expected skyline cardinality (sum of all skyline
//     probabilities) under correlated vs anti-correlated preference
//     assignments. The two assignments move the skyline-probability mass
//     by orders of magnitude on the SAME objects; with zipf value ties,
//     the anti-correlated assignment even collapses it further, because
//     objects tied on one dimension are near-certainly separated on the
//     other.

#include <vector>

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

Dataset MakeData() {
  BlockZipfOptions options = BlockZipfConfig(240, 2);
  options.block_size = 8;
  options.values_per_block = 5;
  return GenerateBlockZipf(options).value();
}

void BM_Fig08_ZipfSkew(benchmark::State& state) {
  Dataset data = MakeData();
  double top_rank_share = 0.0;
  for (auto _ : state) {
    std::size_t top = 0;
    for (ObjectId i = 0; i < data.size(); ++i) {
      if (data.value(i, 0) % 5 == 0) ++top;  // rank-0 value of the block
    }
    top_rank_share = static_cast<double>(top) / static_cast<double>(data.size());
    Keep(top_rank_share);
  }
  // Zipf(1) over 5 values puts 1/H_5 = 0.438 on rank 0 (before dedup).
  state.counters["rank0_share"] = top_rank_share;
}

void BM_Fig08_Correlated(benchmark::State& state) {
  Dataset data = MakeData();
  TablePreferenceModel prefs;
  PreferenceGenOptions options;
  options.style = PreferenceGenOptions::Style::kCorrelated;
  options.seed = 3;
  GeneratePreferences(data, options, &prefs).CheckOK();
  double cardinality = 0.0;
  for (auto _ : state) {
    cardinality = ExpectedSkylineCardinality(data, prefs).value();
    Keep(cardinality);
  }
  state.counters["expected_skyline_objects"] = cardinality;
}

void BM_Fig08_AntiCorrelated(benchmark::State& state) {
  Dataset data = MakeData();
  TablePreferenceModel prefs;
  PreferenceGenOptions options;
  options.style = PreferenceGenOptions::Style::kAntiCorrelated;
  options.seed = 3;
  GeneratePreferences(data, options, &prefs).CheckOK();
  double cardinality = 0.0;
  for (auto _ : state) {
    cardinality = ExpectedSkylineCardinality(data, prefs).value();
    Keep(cardinality);
  }
  state.counters["expected_skyline_objects"] = cardinality;
}

BENCHMARK(BM_Fig08_ZipfSkew)->Iterations(1);
BENCHMARK(BM_Fig08_Correlated)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig08_AntiCorrelated)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Figure 8: one block-zipf dataset, correlated vs "
              "anti-correlated preferences ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
