// Figure 10 — efficiency of the exact algorithms while varying
// dimensionality.
//
//   (a) Uniform, n = 50, d = 2..5: Det and Det+ (cutoff-limited, like the
//       paper's 10^4 s budget). Det+ shines at low d, where absorption
//       removes many candidates (fewer dimensions -> more full profile
//       matches).
//   (b) Block-zipf, n = 10k, d = 2..5: only Det+ is reported — the paper
//       notes Det cannot finish any of these within the budget; we still
//       attempt Det at d=2 to document the DNF.

#include <chrono>

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

void RunExact(benchmark::State& state, const Dataset& data,
              const PreferenceModel& prefs, bool preprocess) {
  auto solver = SkylineSolver::Create(data, prefs).value();
  std::vector<ObjectId> targets =
      SampleTargets(data.size(), TargetCount(data.size()));
  SolverOptions options;
  options.preprocess = preprocess;
  options.exact = PaperExactOptions(ExactCutoffSeconds() /
                                    static_cast<double>(targets.size()));

  double elapsed_ms = 0.0;
  std::uint64_t solves = 0;
  std::size_t absorbed_to = 0;
  for (auto _ : state) {
    for (ObjectId target : targets) {
      SolveStats stats;
      auto start = std::chrono::steady_clock::now();
      auto sky = solver.Exact(target, options, &stats);
      elapsed_ms += std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      ++solves;
      absorbed_to += stats.after_absorption;
      if (!sky.ok()) {
        state.counters["dnf"] = 1;
        state.SkipWithError(("cutoff: " + sky.status().ToString()).c_str());
        return;
      }
      Keep(sky.value());
    }
  }
  state.counters["per_target_ms"] = elapsed_ms / static_cast<double>(solves);
  state.counters["avg_candidates_after_absorption"] =
      static_cast<double>(absorbed_to) / static_cast<double>(solves);
}

void BM_Fig10a_Det_Uniform(benchmark::State& state) {
  Dataset data = GenerateUniform(
                     UniformConfig(50, static_cast<std::size_t>(state.range(0))))
                     .value();
  HashedPreferenceModel prefs = PaperPreferences();
  RunExact(state, data, prefs, /*preprocess=*/false);
}

void BM_Fig10a_DetPlus_Uniform(benchmark::State& state) {
  Dataset data = GenerateUniform(
                     UniformConfig(50, static_cast<std::size_t>(state.range(0))))
                     .value();
  HashedPreferenceModel prefs = PaperPreferences();
  RunExact(state, data, prefs, /*preprocess=*/true);
}

void BM_Fig10b_Det_BlockZipf(benchmark::State& state) {
  Dataset data =
      GenerateBlockZipf(
          BlockZipfConfig(10000, static_cast<std::size_t>(state.range(0))))
          .value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  RunExact(state, data, prefs, /*preprocess=*/false);
}

void BM_Fig10b_DetPlus_BlockZipf(benchmark::State& state) {
  Dataset data =
      GenerateBlockZipf(
          BlockZipfConfig(10000, static_cast<std::size_t>(state.range(0))))
          .value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  RunExact(state, data, prefs, /*preprocess=*/true);
}

BENCHMARK(BM_Fig10a_Det_Uniform)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig10a_DetPlus_Uniform)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig10b_Det_BlockZipf)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig10b_DetPlus_BlockZipf)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Figure 10: exact algorithms, running time vs d "
              "(uniform n=50; block-zipf n=10k; cutoff %.0fs) ==\n",
              skypref::bench::ExactCutoffSeconds());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
