// Extension bench — the lineage (Shannon-expansion) exact engine vs
// Algorithm 1's subset enumeration on dense uniform data.
//
// Algorithm 1 is exponential in the CANDIDATE count; the lineage DP is
// bounded by the reachable (variable, alive-set) states, which dense
// value sharing keeps small. On uniform 5-d data with 10 values per
// dimension the variable count is at most 45 regardless of n, so the DP
// computes exactly what Figure 9a declares hopeless beyond n ~ 25.
// The flip side is shown too: on block-zipf groups (little sharing,
// variables ~ n*d) the classic subset DFS remains the right tool.

#include <chrono>

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

void BM_Lineage_Uniform(benchmark::State& state) {
  Dataset data = GenerateUniform(
                     UniformConfig(static_cast<std::size_t>(state.range(0)), 5))
                     .value();
  HashedPreferenceModel prefs = PaperPreferences();
  std::vector<ObjectId> targets = SampleTargets(data.size(), 8);

  double elapsed_ms = 0.0;
  LineageDpStats stats;
  std::uint64_t total_states = 0;
  for (auto _ : state) {
    for (ObjectId target : targets) {
      auto start = std::chrono::steady_clock::now();
      auto sky = LineageExactWithPreprocessing(data, target, prefs, {},
                                               &stats);
      elapsed_ms += std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      if (!sky.ok()) {
        state.SkipWithError(sky.status().ToString().c_str());
        return;
      }
      total_states += stats.states;
      Keep(sky.value());
    }
  }
  state.counters["per_target_ms"] =
      elapsed_ms / static_cast<double>(targets.size());
  state.counters["dp_states_per_target"] =
      static_cast<double>(total_states) /
      static_cast<double>(targets.size());
}

void BM_SubsetDfs_Uniform(benchmark::State& state) {
  // The same instances through Algorithm 1 (Det+, published form), with
  // the usual cutoff — expected to DNF beyond n ~ 25.
  Dataset data = GenerateUniform(
                     UniformConfig(static_cast<std::size_t>(state.range(0)), 5))
                     .value();
  HashedPreferenceModel prefs = PaperPreferences();
  auto solver = SkylineSolver::Create(data, prefs).value();
  std::vector<ObjectId> targets = SampleTargets(data.size(), 8);
  SolverOptions options;
  options.exact = PaperExactOptions(ExactCutoffSeconds() /
                                    static_cast<double>(targets.size()));
  double elapsed_ms = 0.0;
  for (auto _ : state) {
    for (ObjectId target : targets) {
      auto start = std::chrono::steady_clock::now();
      auto sky = solver.Exact(target, options);
      elapsed_ms += std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      if (!sky.ok()) {
        state.counters["dnf"] = 1;
        state.SkipWithError(("cutoff: " + sky.status().ToString()).c_str());
        return;
      }
      Keep(sky.value());
    }
  }
  state.counters["per_target_ms"] =
      elapsed_ms / static_cast<double>(targets.size());
}

void BM_Lineage_BlockZipfGroups(benchmark::State& state) {
  // Little value sharing: the DP's state space approaches 2^(group size)
  // and the subset DFS is just as good — the honest complementary case.
  Dataset data = GenerateBlockZipf(BlockZipfConfig(
                     static_cast<std::size_t>(state.range(0)), 5))
                     .value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  std::vector<ObjectId> targets = SampleTargets(data.size(), 8);
  double elapsed_ms = 0.0;
  for (auto _ : state) {
    for (ObjectId target : targets) {
      auto start = std::chrono::steady_clock::now();
      auto sky = LineageExactWithPreprocessing(data, target, prefs);
      elapsed_ms += std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      if (!sky.ok()) {
        state.SkipWithError(sky.status().ToString().c_str());
        return;
      }
      Keep(sky.value());
    }
  }
  state.counters["per_target_ms"] =
      elapsed_ms / static_cast<double>(targets.size());
}

BENCHMARK(BM_Lineage_Uniform)
    ->Arg(20)->Arg(30)->Arg(40)->Arg(50)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_SubsetDfs_Uniform)
    ->Arg(20)->Arg(30)->Arg(40)->Arg(50)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Lineage_BlockZipfGroups)
    ->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Extension: lineage (Shannon-expansion) exact engine vs "
              "Algorithm 1 on dense uniform data ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
