// Ablations of the engineering choices documented in DESIGN.md — not
// paper figures, but validation that each knob earns its place.
//
//   1. Zero-subtree pruning in the exact solver. With certain (0/1)
//      preferences many joint probabilities vanish; pruning skips their
//      supersets. Measured by subsets visited and time.
//   2. The sorted checking sequence in the Monte-Carlo estimator
//      (Algorithm 2 line 1): checking likely dominators first refutes
//      non-skyline worlds after fewer preference draws.
//   3. Lazy vs eager world sampling: lazy draws only the preferences a
//      world actually needs.

#include <chrono>

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

void BM_Ablation_ExactPruning(benchmark::State& state) {
  const bool prune = state.range(0) != 0;
  Dataset data = GenerateUniform(UniformConfig(22, 4)).value();
  // Certain preferences: every pair is 0/1, so zero factors abound.
  HashedPreferenceModel prefs(11,
                              HashedPreferenceModel::Style::kCertainOrder);
  std::vector<ObjectId> candidates;
  for (ObjectId i = 1; i < data.size(); ++i) candidates.push_back(i);

  ExactOptions options;
  options.prune_zero = prune;
  ExactStats stats;
  double sky = 0.0;
  for (auto _ : state) {
    sky = ExactSkylineProbability(data, 0, candidates, DoubleOracle(prefs),
                                  options, &stats)
              .value();
    Keep(sky);
  }
  state.counters["subsets_visited"] =
      static_cast<double>(stats.subsets_visited);
  state.counters["sky"] = sky;
}

void RunSamKnob(benchmark::State& state, bool sorted, bool lazy) {
  Dataset data = GenerateBlockZipf(BlockZipfConfig(5000, 5)).value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  std::vector<ObjectId> targets = SampleTargets(data.size(), 4);

  MonteCarloOptions options;
  options.samples = 2000;
  options.sort_by_dominance = sorted;
  options.lazy = lazy;

  std::uint64_t pair_draws = 0;
  for (auto _ : state) {
    pair_draws = 0;
    std::size_t i = 0;
    for (ObjectId target : targets) {
      options.seed = 7 * i++ + 1;
      auto result =
          MonteCarloSkylineProbability(data, target, prefs, options).value();
      pair_draws += result.pair_draws;
      Keep(result.estimate);
    }
  }
  state.counters["pair_draws_per_world"] =
      static_cast<double>(pair_draws) /
      static_cast<double>(options.samples * targets.size());
}

void BM_Ablation_SamSorting(benchmark::State& state) {
  RunSamKnob(state, /*sorted=*/state.range(0) != 0, /*lazy=*/true);
}

void BM_Ablation_SamLaziness(benchmark::State& state) {
  RunSamKnob(state, /*sorted=*/true, /*lazy=*/state.range(0) != 0);
}

BENCHMARK(BM_Ablation_ExactPruning)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Ablation_SamSorting)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Ablation_SamLaziness)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Ablations: exact-solver pruning (arg=1 on), Sam sorted "
              "checking sequence, Sam lazy sampling ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
