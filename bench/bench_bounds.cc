// Extension bench — certified Bonferroni bounds (src/core/bounds.h).
//
// The sound counterpart of the A2 approximation the paper rejects in
// Figure 6: the same truncated inclusion-exclusion series used as
// two-sided certified bounds. Three experiments:
//
//  1. width vs level on a uniform 5-d dataset with 60 objects — a size
//     where the exact solver is hopeless (2^59 subsets), yet certified
//     intervals of useful width cost milliseconds;
//  2. the certified threshold query vs a full Det+ solve on a uniform
//     instance small enough that exact is feasible (n = 26), showing the
//     speedup when only a yes/no at tau is needed;
//  3. the exact probabilistic-skyline query on block-zipf data, where
//     bounds screen most objects and only boundary objects pay for an
//     exact solve.

#include <chrono>

#include "bench_util.h"

namespace {

using namespace skypref;
using namespace skypref::bench;

void BM_Bounds_WidthVsLevel_UniformSixty(benchmark::State& state) {
  Dataset data = GenerateUniform(UniformConfig(60, 5)).value();
  HashedPreferenceModel prefs = PaperPreferences();
  std::vector<ObjectId> targets = SampleTargets(data.size(), 12);
  const double tau = 0.5;

  BoundsOptions options;
  options.max_level = static_cast<std::size_t>(state.range(0));
  options.term_budget = 1u << 22;
  double total_width = 0.0;
  std::size_t conclusive = 0;
  for (auto _ : state) {
    total_width = 0.0;
    conclusive = 0;
    for (ObjectId target : targets) {
      SkylineBounds bounds =
          BoundedSkylineProbabilityPreprocessed(data, target, prefs, options)
              .value();
      total_width += bounds.width();
      if (bounds.lower >= tau || bounds.upper < tau) ++conclusive;
      Keep(bounds.lower);
    }
  }
  state.counters["avg_width"] =
      total_width / static_cast<double>(targets.size());
  state.counters["decided_at_tau0.5"] = static_cast<double>(conclusive);
  state.counters["targets"] = static_cast<double>(targets.size());
}

void BM_Bounds_DecideThreshold_Uniform(benchmark::State& state) {
  Dataset data = GenerateUniform(UniformConfig(26, 5)).value();
  HashedPreferenceModel prefs = PaperPreferences();
  std::vector<ObjectId> targets = SampleTargets(data.size(), 8);
  const double tau = 0.5;

  std::size_t above = 0;
  for (auto _ : state) {
    above = 0;
    for (ObjectId target : targets) {
      if (DecideThreshold(data, target, prefs, tau).value()) ++above;
    }
  }
  state.counters["above_tau"] = static_cast<double>(above);
}

void BM_Bounds_ExactReference_Uniform(benchmark::State& state) {
  // The same decision answered by a full Det+ solve.
  Dataset data = GenerateUniform(UniformConfig(26, 5)).value();
  HashedPreferenceModel prefs = PaperPreferences();
  auto solver = SkylineSolver::Create(data, prefs).value();
  std::vector<ObjectId> targets = SampleTargets(data.size(), 8);
  const double tau = 0.5;

  std::size_t above = 0;
  for (auto _ : state) {
    above = 0;
    for (ObjectId target : targets) {
      if (solver.Exact(target).value() >= tau) ++above;
    }
  }
  state.counters["above_tau"] = static_cast<double>(above);
}

void BM_Bounds_ExactProbabilisticSkyline(benchmark::State& state) {
  Dataset data = GenerateBlockZipf(BlockZipfConfig(
                     static_cast<std::size_t>(state.range(0)), 5))
                     .value();
  HashedPreferenceModel base = PaperPreferences();
  BlockLocalPreferenceModel prefs = BlockPrefs(base);
  ProbSkylineStats stats;
  std::size_t skyline_size = 0;
  for (auto _ : state) {
    auto skyline =
        ExactProbabilisticSkyline(data, prefs, 0.5, {}, &stats).value();
    skyline_size = skyline.size();
    Keep(skyline_size);
  }
  state.counters["skyline_size"] = static_cast<double>(skyline_size);
  state.counters["decided_by_bounds"] =
      static_cast<double>(stats.decided_by_bounds);
  state.counters["exact_fallbacks"] =
      static_cast<double>(stats.exact_fallbacks);
}

BENCHMARK(BM_Bounds_WidthVsLevel_UniformSixty)
    ->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Bounds_DecideThreshold_Uniform)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Bounds_ExactReference_Uniform)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Bounds_ExactProbabilisticSkyline)
    ->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Extension: certified Bonferroni bounds, threshold "
              "queries, and the exact probabilistic skyline ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
