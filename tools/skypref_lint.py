#!/usr/bin/env python3
"""Repo-specific lint for skypref invariants that generic tools can't see.

Rules (each can be suppressed on a line with `skypref-lint: allow(<rule>)`
in a trailing comment, which must state why):

  no-exceptions   `throw` / `try` / `catch` anywhere under src/. The
                  library is exception-free by contract: fallible paths
                  return Status/Result, fatal paths abort.
  no-raw-random   `rand()` / `srand()` / `std::random_device` outside
                  src/util/random.*. Every stochastic component draws
                  from the seeded, fully specified Xoshiro256++ stream so
                  a single 64-bit seed reproduces an entire experiment.
                  Also: direct construction of the generator primitives
                  (`SplitMix64(...)`, `Xoshiro*`) outside src/util/ and
                  the sampler engines (src/core/monte_carlo.cc,
                  src/core/sam_parallel.cc). Hand-rolled seed derivation
                  is how two call sites silently end up on correlated
                  streams; derive sub-streams with Rng::Fork() or
                  SplitSeed() instead.
  no-stdout       `std::cout` / bare `printf(` in library code under
                  src/. The library reports through Status values;
                  stderr (fprintf(stderr, ...)) is allowed for fatal
                  aborts.
  float-eq        `==` / `!=` against a floating-point literal in
                  src/core/. Probabilities accumulate rounding error;
                  exact comparison is almost always a bug. Deliberate
                  exact-zero short-circuits carry an allow() comment.
  include-guard   Headers under src/ must guard with
                  SKYPREF_<PATH>_H_ derived from the repo-relative path
                  (e.g. src/util/check.h -> SKYPREF_UTIL_CHECK_H_).
  discarded-status
                  A bare statement calling a function whose declaration
                  returns Status or Result<...> throws the error away —
                  the failure silently vanishes. Consume it: check ok(),
                  CheckOK(), assign it, or wrap it in the RETURN_IF_ERROR
                  macros. The rule is a heuristic: it collects the names
                  of Status/Result-returning functions declared in the
                  linted tree, then flags single-line statements that
                  start with a call to one of them and neither assign,
                  chain, nor test the value.
  mutex-guarded-by
                  A mutex member (std::mutex or skypref::Mutex) whose
                  file carries no SKYPREF_GUARDED_BY(<that member>) on
                  any sibling field. A lock that guards nothing named is
                  a lock whose contract lives in the author's head;
                  clang -Wthread-safety can only prove what the
                  annotations state (src/util/thread_annotations.h has
                  the conventions). The wrapper's own home file is
                  exempt — it holds the one raw std::mutex by design.
  failpoint-site  A SKYPREF_FAILPOINT / SKYPREF_ALLOC_FAILPOINT /
                  SKYPREF_WAKE_FAILPOINT site literal that is absent from
                  the canonical kKnownSites registry in
                  src/util/failpoint.cc. Unregistered sites are invisible
                  to seeded chaos schedules and the coverage suite — a
                  typo'd name silently tests nothing. Skipped when the
                  registry file is not under the repo root (single-file
                  invocations outside the tree).

Usage:
  tools/skypref_lint.py [paths...]     # default: src/

Exits 0 when clean, 1 on findings, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Iterable, List, NamedTuple

CXX_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}

ALLOW_RE = re.compile(r"skypref-lint:\s*allow\(([a-z\-]+)\)")

RULE_NO_EXCEPTIONS = "no-exceptions"
RULE_NO_RAW_RANDOM = "no-raw-random"
RULE_NO_STDOUT = "no-stdout"
RULE_FLOAT_EQ = "float-eq"
RULE_INCLUDE_GUARD = "include-guard"
RULE_DISCARDED_STATUS = "discarded-status"
RULE_MUTEX_GUARDED_BY = "mutex-guarded-by"
RULE_FAILPOINT_SITE = "failpoint-site"

EXCEPTION_RE = re.compile(r"\b(throw|try|catch)\b")
RAW_RANDOM_RE = re.compile(r"\b(?:s?rand)\s*\(|std::random_device")
# Direct construction of the PRNG primitives: SplitMix64 or any Xoshiro
# flavor followed by an initializer. Mentions in comments/strings are
# stripped before matching; a bare type name in a declaration without an
# initializer is rare enough to accept the false negative.
PRNG_CONSTRUCT_RE = re.compile(
    r"\b(SplitMix64|Xoshiro\w*)\s*(?:[A-Za-z_]\w*\s*)?[({]"
)
# Files allowed to build PRNG primitives directly: the generator's home,
# and the sampler engines whose seeding discipline IS the feature
# (documented block-seeding contracts, covered by determinism tests).
PRNG_CONSTRUCT_HOMES = (
    "src/util/",
    "src/core/monte_carlo.cc",
    "src/core/sam_parallel.cc",
    "src/core/sam_bitslice.cc",
)
STDOUT_RE = re.compile(r"std::cout|(?<![A-Za-z0-9_])printf\s*\(")
FLOAT_LITERAL = r"[0-9]+\.[0-9]*(?:[eE][+-]?[0-9]+)?[fFlL]?"
FLOAT_EQ_RE = re.compile(
    r"(?:(?:==|!=)\s*-?{lit})|(?:{lit}\s*(?:==|!=))".format(lit=FLOAT_LITERAL)
)

# A mutex member declaration: `std::mutex name;` or `Mutex name;`
# (optionally skypref::-qualified). The mandatory space between the type
# and the member name keeps `MutexLock lock(...)` from matching, and the
# immediate `;` skips locals initialized with parentheses.
MUTEX_MEMBER_RE = re.compile(
    r"\b(?:std::mutex|(?:skypref::)?Mutex)\s+(\w+)\s*;"
)
# The one file allowed to hold an unannotated raw std::mutex: the
# capability wrapper that every other mutex in the tree goes through.
MUTEX_WRAPPER_HOME = "src/util/thread_annotations.h"

# A declaration or definition whose return type is Status or Result<...>:
# the function-name registry feeding the discarded-status rule.
STATUS_DECL_RE = re.compile(
    r"\b(?:Status|Result<[^;(){}]*>)\s+"
    r"(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\("
)

# A failpoint macro invocation with its site literal. The literal lives
# inside a string, which strip_code blanks, so this regex runs against
# the RAW line — gated on the stripped line still containing the macro
# name, which keeps comment mentions (blanked entirely) out.
FAILPOINT_MACRO_RE = re.compile(
    r"\bSKYPREF_(?:ALLOC_|WAKE_)?FAILPOINT\s*\(\s*\"([^\"]+)\""
)
# One entry of the canonical site registry in FAILPOINT_REGISTRY_FILE:
# `{"name", SiteClass::kExecution},` — the table is kept one entry per
# line precisely so this parse stays trivial.
KNOWN_SITE_RE = re.compile(r"\{\s*\"([^\"]+)\"\s*,\s*SiteClass::")
FAILPOINT_REGISTRY_FILE = "src/util/failpoint.cc"


def collect_known_sites(repo_root: Path) -> set | None:
    """Site names of the canonical registry, or None (rule skipped) when
    the registry file is absent — e.g. linting a file outside the tree."""
    registry = repo_root / FAILPOINT_REGISTRY_FILE
    if not registry.is_file():
        return None
    sites = set()
    for line in registry.read_text(encoding="utf-8").split("\n"):
        m = KNOWN_SITE_RE.search(line)
        if m:
            sites.add(m.group(1))
    return sites

# Statement keywords that legitimately start a line containing a call
# whose value IS consumed (returned, tested, iterated).
STATEMENT_KEYWORD_RE = re.compile(
    r"^\s*(?:return|co_return|if|else|while|for|do|switch|case)\b"
)


def collect_status_functions(code_lines: List[str]) -> set:
    """Names of functions declared (in these stripped lines) to return
    Status or Result<...>."""
    names = set()
    for code in code_lines:
        for m in STATUS_DECL_RE.finditer(code):
            names.add(m.group(1))
    return names


class Finding(NamedTuple):
    path: Path
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text: str) -> List[str]:
    """Returns the file's lines with comments and string/char literals
    blanked out (replaced by spaces), so rule regexes only see code.
    Trailing `//` comments are preserved verbatim: that is where
    skypref-lint: allow(...) suppressions live, and ALLOW_RE reads them
    from the original line anyway."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    cur: List[str] = []
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                cur.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                cur.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                cur.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                cur.append(" ")
                i += 1
                continue
            cur.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                cur.append(c)
            else:
                cur.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                cur.append("  ")
                i += 2
                continue
            cur.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                cur.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            cur.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(cur).split("\n")


def expected_guard(relpath: Path) -> str:
    mangled = re.sub(r"[^A-Za-z0-9]", "_", str(relpath)).upper()
    if mangled.startswith("SRC_"):
        mangled = mangled[len("SRC_"):]
    return f"SKYPREF_{mangled}_"


def is_suppressed(raw_line: str, rule: str) -> bool:
    return any(m.group(1) == rule for m in ALLOW_RE.finditer(raw_line))


def check_file(path: Path, repo_root: Path,
               status_functions: set | None = None,
               known_sites: set | None = None) -> List[Finding]:
    rel = path.relative_to(repo_root)
    raw = path.read_text(encoding="utf-8")
    raw_lines = raw.split("\n")
    code_lines = strip_code(raw)
    findings: List[Finding] = []

    in_random_home = rel.as_posix().startswith("src/util/random.")
    in_core = rel.as_posix().startswith("src/core/")
    may_construct_prng = rel.as_posix().startswith(PRNG_CONSTRUCT_HOMES)

    # Single-file mode (tests, ad-hoc invocation): the registry is just
    # this file's own declarations. main() passes the tree-wide set.
    if status_functions is None:
        status_functions = collect_status_functions(code_lines)
    bare_call_re = None
    if status_functions:
        names = "|".join(sorted(re.escape(n) for n in status_functions))
        # A statement that starts with a (possibly object-qualified) call
        # to a registered function and ends on the same line. Chained or
        # nested calls leave a ")." / ")->" on the line and are skipped:
        # the value might be consumed, and this rule prefers precision.
        bare_call_re = re.compile(
            r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*"
            r"(?:{names})\s*\(.*\)\s*;\s*$".format(names=names)
        )

    def add(lineno: int, rule: str, message: str) -> None:
        if not is_suppressed(raw_lines[lineno - 1], rule):
            findings.append(Finding(rel, lineno, rule, message))

    # Tracks whether the current line STARTS a statement: the previous
    # non-blank code line ended one (`;`, braces, labels, preprocessor).
    # Otherwise the line is a continuation — e.g. the wrapped argument of
    # SKYPREF_ASSIGN_OR_RETURN or the right-hand side of an assignment —
    # and the discarded-status rule must not look at it in isolation.
    at_statement_start = True
    for lineno, code in enumerate(code_lines, start=1):
        for m in EXCEPTION_RE.finditer(code):
            add(lineno, RULE_NO_EXCEPTIONS,
                f"'{m.group(1)}' in exception-free library code "
                "(return Status/Result instead)")
        if not in_random_home:
            for _ in RAW_RANDOM_RE.finditer(code):
                add(lineno, RULE_NO_RAW_RANDOM,
                    "non-deterministic randomness outside src/util/random.* "
                    "(use skypref::Rng, seeded)")
        if not may_construct_prng:
            for m in PRNG_CONSTRUCT_RE.finditer(code):
                add(lineno, RULE_NO_RAW_RANDOM,
                    f"direct {m.group(1)} construction outside src/util/ "
                    "and the sampler engines (derive sub-streams with "
                    "Rng::Fork() or SplitSeed())")
        for _ in STDOUT_RE.finditer(code):
            add(lineno, RULE_NO_STDOUT,
                "library code must not print to stdout "
                "(report through Status; stderr only for fatal aborts)")
        if in_core:
            for _ in FLOAT_EQ_RE.finditer(code):
                add(lineno, RULE_FLOAT_EQ,
                    "exact ==/!= against a floating-point literal in core "
                    "solver code (compare with a tolerance, or annotate a "
                    "deliberate exact-zero test)")
        if known_sites is not None and "SKYPREF_" in code:
            for m in FAILPOINT_MACRO_RE.finditer(raw_lines[lineno - 1]):
                if m.group(1) not in known_sites:
                    add(lineno, RULE_FAILPOINT_SITE,
                        f"failpoint site \"{m.group(1)}\" is not in the "
                        f"kKnownSites registry ({FAILPOINT_REGISTRY_FILE}) — "
                        "seeded schedules and the coverage suite cannot "
                        "see it")
        if (bare_call_re is not None
                and at_statement_start
                and "=" not in code
                and ")." not in code
                and ")->" not in code
                and code.count("(") == code.count(")")
                and not STATEMENT_KEYWORD_RE.match(code)
                and bare_call_re.match(code)):
            add(lineno, RULE_DISCARDED_STATUS,
                "Status/Result return value discarded (check ok(), "
                "CheckOK(), assign it, or use SKYPREF_RETURN_IF_ERROR)")
        stripped = code.strip()
        if stripped:
            at_statement_start = (stripped[-1] in ";{}:"
                                  or stripped.startswith("#"))

    if rel.as_posix() != MUTEX_WRAPPER_HOME:
        full_code = "\n".join(code_lines)
        for lineno, code in enumerate(code_lines, start=1):
            for m in MUTEX_MEMBER_RE.finditer(code):
                name = m.group(1)
                guarded = re.search(
                    r"SKYPREF_GUARDED_BY\(\s*{}\s*\)".format(re.escape(name)),
                    full_code)
                if not guarded:
                    add(lineno, RULE_MUTEX_GUARDED_BY,
                        f"mutex member '{name}' has no "
                        f"SKYPREF_GUARDED_BY({name}) sibling field — "
                        "annotate what the lock protects "
                        "(src/util/thread_annotations.h)")

    if path.suffix in (".h", ".hpp"):
        guard = expected_guard(rel)
        ifndef = re.search(r"^#ifndef\s+(\S+)", raw, re.MULTILINE)
        define = re.search(r"^#define\s+(\S+)", raw, re.MULTILINE)
        if not ifndef or not define:
            add(1, RULE_INCLUDE_GUARD, f"missing include guard {guard}")
        elif ifndef.group(1) != guard or define.group(1) != guard:
            bad_line = raw[: ifndef.start()].count("\n") + 1
            add(bad_line, RULE_INCLUDE_GUARD,
                f"include guard is {ifndef.group(1)}, expected {guard}")

    return findings


def iter_sources(paths: Iterable[Path], repo_root: Path) -> Iterable[Path]:
    for p in paths:
        p = p if p.is_absolute() else repo_root / p
        if p.is_file():
            if p.suffix in CXX_SUFFIXES:
                yield p
        elif p.is_dir():
            for child in sorted(p.rglob("*")):
                if child.is_file() and child.suffix in CXX_SUFFIXES:
                    yield child
        else:
            raise FileNotFoundError(p)


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--repo-root", default=None,
                        help="repo root for relative paths and guard names "
                             "(default: parent of tools/)")
    args = parser.parse_args(argv)

    repo_root = Path(args.repo_root).resolve() if args.repo_root \
        else Path(__file__).resolve().parent.parent
    try:
        sources = list(iter_sources([Path(p) for p in args.paths], repo_root))
    except FileNotFoundError as err:
        print(f"skypref_lint: no such path: {err.args[0]}", file=sys.stderr)
        return 2

    # Pass 1: collect Status/Result-returning function names tree-wide,
    # so a call in one file is checked against a declaration in another.
    status_functions: set = set()
    for source in sources:
        status_functions |= collect_status_functions(
            strip_code(source.read_text(encoding="utf-8")))

    known_sites = collect_known_sites(repo_root)

    findings: List[Finding] = []
    for source in sources:
        findings.extend(
            check_file(source, repo_root, status_functions, known_sites))

    for finding in findings:
        print(finding)
    if findings:
        print(f"skypref_lint: {len(findings)} finding(s) in "
              f"{len(sources)} file(s)", file=sys.stderr)
        return 1
    print(f"skypref_lint: clean ({len(sources)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
