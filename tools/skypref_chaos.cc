// skypref_chaos — seeded chaos sweep over the solver stack.
//
//   skypref_chaos [--schedules=N] [--seed=S] [--objects=N] [--dims=D]
//                 [--values=V] [--threads=0,1,2,8] [--watchdog-seconds=T]
//                 [--json=FILE]
//
// For every (engine, thread count, schedule) triple the driver arms EVERY
// registered failpoint site with a schedule derived from one 64-bit seed
// (failpoint::ArmSeededSchedule), runs the engine over a fixed seeded
// instance, and asserts the robustness invariants:
//
//  * survivors are bit-identical to the fault-free baseline run (and the
//    baseline itself matches the exact-rational referee);
//  * every casualty carries a well-formed non-OK Status — no silent NaN,
//    no bogus value, no process death (armed kAllocFail included);
//  * truncated / degraded estimates stay inside (twice) their published
//    error bars, which still contain the rational-referee truth;
//  * teardown leaves no armed site behind.
//
// Engines swept: the batch exact solver (kFlat), the two deterministic
// Sam engines (kBlock, kBitSliced), and the resilient ladder. A hang
// watchdog aborts — after printing the offending schedule seed — if no
// run makes progress for --watchdog-seconds, so a deadlock shaken loose
// by kSpuriousWake or kDelay fails fast instead of wedging CI. Every
// failure message prints the schedule seed; re-running with --seed and
// --schedules reproduces the exact same arming.
//
// With failpoints compiled out (release presets) the sweep still runs,
// but every schedule is a no-op: the tool says so and the JSON carries
// failpoints_compiled_in=false.

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/resilient.h"
#include "src/core/sam_bitslice.h"
#include "src/core/sam_parallel.h"
#include "src/core/solver.h"
#include "src/model/preference_model.h"
#include "src/util/failpoint.h"
#include "src/util/hash.h"
#include "src/util/random.h"

namespace {

using namespace skypref;

// ------------------------------------------------------------------ CLI

struct Args {
  std::map<std::string, std::string> flags;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      std::exit(2);
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      args.flags[arg] = "true";
    } else {
      args.flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return args;
}

std::int64_t IntFlagOr(const Args& args, const std::string& key,
                       std::int64_t fallback) {
  auto it = args.flags.find(key);
  return it == args.flags.end() ? fallback : std::atoll(it->second.c_str());
}

std::string FlagOr(const Args& args, const std::string& key,
                   const std::string& fallback) {
  auto it = args.flags.find(key);
  return it == args.flags.end() ? fallback : it->second;
}

std::vector<std::size_t> ParseThreadList(const std::string& spec) {
  std::vector<std::size_t> threads;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    if (comma > pos) {
      threads.push_back(
          static_cast<std::size_t>(std::atoll(spec.substr(pos, comma - pos).c_str())));
    }
    pos = comma + 1;
  }
  return threads;
}

// ------------------------------------------------- watchdog + reporting

std::atomic<std::uint64_t> g_progress{0};
std::atomic<std::uint64_t> g_watchdog_trips{0};

// Context for failure messages and the watchdog report. Only the main
// thread writes it, and only between runs; the watchdog reads it after a
// stall, when the main thread is by definition stuck inside a run.
char g_context[256] = "startup";

void SetContext(const char* engine, std::size_t threads, std::uint64_t index,
                std::uint64_t schedule_seed) {
  std::snprintf(g_context, sizeof(g_context),
                "engine=%s threads=%zu schedule=%" PRIu64
                " schedule_seed=0x%016" PRIx64,
                engine, threads, index, schedule_seed);
}

[[noreturn]] void Fail(const std::string& message) {
  std::fprintf(stderr, "skypref_chaos FAILED [%s]: %s\n", g_context,
               message.c_str());
  std::exit(1);
}

// ------------------------------------------------------------ instance

Dataset ChaosDataset(std::uint64_t seed, std::size_t objects,
                     std::size_t dimensions, ValueId values) {
  std::uint64_t capacity = 1;
  for (std::size_t j = 0; j < dimensions && capacity < objects; ++j) {
    capacity *= values;
  }
  if (capacity < objects) {
    std::fprintf(stderr, "value universe too small for %zu distinct rows\n",
                 objects);
    std::exit(2);
  }
  Rng rng(seed);
  Dataset data(dimensions);
  std::set<std::vector<ValueId>> seen;
  std::vector<ValueId> row(dimensions);
  while (data.size() < objects) {
    for (auto& v : row) v = static_cast<ValueId>(rng.NextBounded(values));
    if (!seen.insert(row).second) continue;
    data.Append(row).CheckOK();
  }
  return data;
}

/// Denominator-16 rational preferences over the full value universe: the
/// SAME instance feeds the double solvers (PreferenceModel rounds each
/// rational) and the exact-rational referee, so referee truths are
/// truths about exactly the probabilities the solvers saw.
RationalPreferenceModel ChaosModel(std::uint64_t seed, const Dataset& data) {
  RationalPreferenceModel model;
  for (DimensionId j = 0; j < data.dimensions(); ++j) {
    const ValueId bound = data.value_bound(j);
    for (ValueId a = 0; a < bound; ++a) {
      for (ValueId b = a + 1; b < bound; ++b) {
        const std::uint64_t mix =
            HashMix(seed ^ (static_cast<std::uint64_t>(j) << 40) ^
                    (static_cast<std::uint64_t>(a) << 20) ^ b);
        const std::int64_t k = 1 + static_cast<std::int64_t>(mix % 15);
        model
            .Set(j, a, b, Rational(BigInt(k), BigInt(16)),
                 Rational(BigInt(16 - k), BigInt(16)))
            .CheckOK();
      }
    }
  }
  return model;
}

// ------------------------------------------------------------- engines

enum class EngineKind { kFlat, kBlock, kBitSliced, kResilient };

const char* EngineName(EngineKind e) {
  switch (e) {
    case EngineKind::kFlat: return "flat";
    case EngineKind::kBlock: return "block";
    case EngineKind::kBitSliced: return "bitsliced";
    case EngineKind::kResilient: return "resilient";
  }
  return "?";
}

constexpr double kSamplerDelta = 1e-6;

/// One run's per-target outcome, engine-agnostic.
struct RunOutcome {
  std::vector<double> value;       // NaN for casualties
  std::vector<Status> status;      // non-OK for casualties
  std::vector<bool> truncated;     // sam engines
  std::vector<std::uint64_t> achieved;  // sam engines: worlds drawn
  std::vector<double> epsilon;     // resilient: recombined bar
  std::vector<bool> exact_quality; // resilient: answered by rung 1
  std::uint64_t retried = 0;
  std::uint64_t salvaged = 0;
  std::uint64_t degraded = 0;
};

SolverOptions ExactBatchOptions() {
  SolverOptions options;
  options.exact.max_subsets = 20000;
  return options;
}

MonteCarloOptions SamOptions(EngineKind engine, ObjectId target) {
  MonteCarloOptions mc;
  mc.samples = 2048;
  mc.block_size = 256;  // multiple of 64 for the bit-sliced engine
  mc.seed = HashMix(0xc4a05eedULL ^ target);
  mc.engine = engine == EngineKind::kBitSliced
                  ? MonteCarloOptions::Engine::kBitSliced
                  : MonteCarloOptions::Engine::kBlock;
  return mc;
}

RunOutcome RunEngine(EngineKind engine, const Dataset& data,
                     const RationalPreferenceModel& model, ThreadPool& pool) {
  const std::size_t n = data.size();
  RunOutcome out;
  out.value.assign(n, 0.0);
  out.status.assign(n, Status::OK());
  out.truncated.assign(n, false);
  out.achieved.assign(n, 0);
  out.epsilon.assign(n, 0.0);
  out.exact_quality.assign(n, true);
  switch (engine) {
    case EngineKind::kFlat: {
      BatchExactStats stats;
      auto result = BatchExactSkylineProbabilities(data, model, pool,
                                                   ExactBatchOptions(), &stats);
      if (!result.ok()) Fail("batch call failed: " + result.status().ToString());
      out.value = std::move(result).value();
      out.status = stats.target_status;
      out.retried = stats.retried_targets;
      out.salvaged = stats.salvaged_targets;
      break;
    }
    case EngineKind::kBlock:
    case EngineKind::kBitSliced: {
      for (ObjectId t = 0; t < n; ++t) {
        const MonteCarloOptions mc = SamOptions(engine, t);
        auto result =
            engine == EngineKind::kBitSliced
                ? BitSlicedMonteCarloSkylineProbability(data, t, model, pool,
                                                        mc)
                : BlockMonteCarloSkylineProbability(data, t, model, pool, mc);
        if (result.ok()) {
          out.value[t] = result->estimate;
          out.truncated[t] = result->truncated;
          out.achieved[t] = result->samples;
        } else {
          out.value[t] = std::nan("");
          out.status[t] = result.status();
        }
      }
      break;
    }
    case EngineKind::kResilient: {
      ResilientOptions options;
      options.solver = ExactBatchOptions();
      options.solver.monte_carlo.epsilon = 0.05;
      options.solver.monte_carlo.delta = kSamplerDelta;
      auto result = ResilientBatchSkylineProbabilities(data, model, pool,
                                                       options);
      if (!result.ok()) {
        Fail("resilient batch failed: " + result.status().ToString());
      }
      out.value = result->estimates;
      out.epsilon = result->epsilons;
      out.degraded = result->degraded_targets;
      out.retried = result->batch_stats.retried_targets;
      out.salvaged = result->batch_stats.salvaged_targets;
      for (ObjectId t = 0; t < n; ++t) {
        out.exact_quality[t] = result->quality[t] == GroupQuality::kExact;
      }
      break;
    }
  }
  return out;
}

// ---------------------------------------------------------- assertions

bool BitIdentical(double a, double b) {
  std::uint64_t ab = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

std::string TargetTag(ObjectId t) { return "target " + std::to_string(t); }

/// Baseline sanity: fault-free, and consistent with the referee truth.
void CheckBaseline(EngineKind engine, const RunOutcome& base,
                   const std::vector<double>& truth) {
  const std::size_t n = truth.size();
  for (ObjectId t = 0; t < n; ++t) {
    if (!base.status[t].ok()) {
      Fail("fault-free baseline failed " + TargetTag(t) + ": " +
           base.status[t].ToString());
    }
    switch (engine) {
      case EngineKind::kFlat:
      case EngineKind::kResilient:
        // Exact values: referee agreement up to double rounding of the
        // per-group product recombination.
        if (std::fabs(base.value[t] - truth[t]) > 1e-9) {
          Fail("baseline disagrees with rational referee at " + TargetTag(t));
        }
        break;
      case EngineKind::kBlock:
      case EngineKind::kBitSliced: {
        // Statistical agreement at twice the Hoeffding bar (miss
        // probability <= kSamplerDelta^4 per target — not flaky).
        const double bar =
            2.0 * HoeffdingEpsilon(base.achieved[t], kSamplerDelta);
        if (base.truncated[t]) {
          Fail("fault-free sam baseline truncated at " + TargetTag(t));
        }
        if (std::fabs(base.value[t] - truth[t]) > bar) {
          Fail("sam baseline outside 2x Hoeffding bar at " + TargetTag(t));
        }
        break;
      }
    }
  }
}

/// The chaos invariants of one faulted run against its baseline.
void CheckRun(EngineKind engine, const RunOutcome& run, const RunOutcome& base,
              const std::vector<double>& truth, std::uint64_t* casualties,
              std::uint64_t* truncated_runs) {
  const std::size_t n = truth.size();
  for (ObjectId t = 0; t < n; ++t) {
    if (!run.status[t].ok()) {
      // Casualty: well-formed Status and a NaN slot, never a bogus value.
      ++*casualties;
      if (run.status[t].message().empty()) {
        Fail("casualty with empty status message at " + TargetTag(t));
      }
      if (engine != EngineKind::kResilient && !std::isnan(run.value[t])) {
        Fail("casualty with non-NaN value at " + TargetTag(t));
      }
      continue;
    }
    if (std::isnan(run.value[t])) {
      Fail("OK status but NaN value at " + TargetTag(t));
    }
    switch (engine) {
      case EngineKind::kFlat:
        if (!BitIdentical(run.value[t], base.value[t])) {
          Fail("survivor not bit-identical to baseline at " + TargetTag(t));
        }
        break;
      case EngineKind::kBlock:
      case EngineKind::kBitSliced:
        if (!run.truncated[t]) {
          if (!BitIdentical(run.value[t], base.value[t])) {
            Fail("untruncated sam estimate not bit-identical at " +
                 TargetTag(t));
          }
        } else {
          ++*truncated_runs;
          if (run.achieved[t] == 0) {
            Fail("truncated sam run with zero samples at " + TargetTag(t));
          }
          const double bar =
              2.0 * HoeffdingEpsilon(run.achieved[t], kSamplerDelta);
          if (bar < 0.5 && std::fabs(run.value[t] - truth[t]) > bar) {
            Fail("truncated sam estimate outside 2x Hoeffding bar at " +
                 TargetTag(t));
          }
        }
        break;
      case EngineKind::kResilient:
        if (run.exact_quality[t]) {
          if (!BitIdentical(run.value[t], base.value[t])) {
            Fail("exact-quality resilient target not bit-identical at " +
                 TargetTag(t));
          }
        } else {
          // Degraded target: the published bar must contain the referee
          // truth (asserted at 2x; miss probability <= delta^4).
          if (std::fabs(run.value[t] - truth[t]) >
              2.0 * run.epsilon[t] + 1e-9) {
            Fail("degraded resilient target outside its error bar at " +
                 TargetTag(t));
          }
        }
        break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  const std::uint64_t schedules =
      static_cast<std::uint64_t>(IntFlagOr(args, "schedules", 32));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(IntFlagOr(args, "seed", 20260809));
  const std::size_t objects =
      static_cast<std::size_t>(IntFlagOr(args, "objects", 12));
  const std::size_t dims = static_cast<std::size_t>(IntFlagOr(args, "dims", 3));
  const ValueId values = static_cast<ValueId>(IntFlagOr(args, "values", 4));
  const std::int64_t watchdog_seconds =
      IntFlagOr(args, "watchdog-seconds", 120);
  const std::string json_path = FlagOr(args, "json", "");
  const std::vector<std::size_t> thread_counts =
      ParseThreadList(FlagOr(args, "threads", "0,1,2,8"));

#if defined(SKYPREF_FAILPOINTS) && SKYPREF_FAILPOINTS
  const bool failpoints_on = true;
#else
  const bool failpoints_on = false;
  std::fprintf(stderr,
               "note: failpoints compiled out (SKYPREF_FAILPOINTS off); "
               "schedules arm but inject nothing\n");
#endif

  std::printf("skypref_chaos: seed=%" PRIu64 " schedules=%" PRIu64
              " objects=%zu dims=%zu values=%u\n",
              seed, schedules, objects, dims, values);

  const Dataset data = ChaosDataset(HashMix(seed ^ 0xda7a5e7ULL), objects,
                                    dims, values);
  const RationalPreferenceModel model =
      ChaosModel(HashMix(seed ^ 0x10de1ULL), data);

  // Referee truths in exact rational arithmetic, BEFORE any arming.
  std::vector<double> truth(data.size());
  for (ObjectId t = 0; t < data.size(); ++t) {
    auto exact = ExactSkylineProbabilityRational(data, t, model,
                                                 /*preprocess=*/true);
    exact.status().CheckOK();
    truth[t] = exact->ToDouble();
  }

  // Hang watchdog: abort (after naming the wedged schedule) if no run
  // finishes for watchdog_seconds. Progress is the run counter.
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog([&] {
    std::uint64_t last = g_progress.load(std::memory_order_relaxed);
    auto last_change = std::chrono::steady_clock::now();
    while (!watchdog_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      const std::uint64_t now = g_progress.load(std::memory_order_relaxed);
      if (now != last) {
        last = now;
        last_change = std::chrono::steady_clock::now();
        continue;
      }
      const auto stalled = std::chrono::steady_clock::now() - last_change;
      if (stalled > std::chrono::seconds(watchdog_seconds)) {
        g_watchdog_trips.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "skypref_chaos WATCHDOG: no progress in %llds [%s]\n",
                     static_cast<long long>(watchdog_seconds), g_context);
        std::abort();
      }
    }
  });

  const EngineKind engines[] = {EngineKind::kFlat, EngineKind::kBlock,
                                EngineKind::kBitSliced,
                                EngineKind::kResilient};

  std::uint64_t runs = 0;
  std::uint64_t casualties = 0;
  std::uint64_t truncated_runs = 0;
  std::uint64_t retried = 0;
  std::uint64_t salvaged = 0;
  std::uint64_t degraded = 0;
  std::uint64_t schedules_armed = 0;
  const std::uint64_t fired_before = failpoint::FiredCount();

  for (std::size_t threads : thread_counts) {
    ThreadPool pool(threads);
    for (EngineKind engine : engines) {
      failpoint::DisarmAll();
      SetContext(EngineName(engine), threads, ~0ULL, 0);
      const RunOutcome base = RunEngine(engine, data, model, pool);
      CheckBaseline(engine, base, truth);
      g_progress.fetch_add(1, std::memory_order_relaxed);

      for (std::uint64_t i = 0; i < schedules; ++i) {
        const std::uint64_t schedule_seed = HashMix(seed + i);
        SetContext(EngineName(engine), threads, i, schedule_seed);
        schedules_armed += failpoint::ArmSeededSchedule(schedule_seed);
        const RunOutcome run = RunEngine(engine, data, model, pool);
        failpoint::DisarmAll();
        if (failpoint::ArmedCount() != 0) {
          Fail("armed sites leaked after teardown");
        }
        CheckRun(engine, run, base, truth, &casualties, &truncated_runs);
        retried += run.retried;
        salvaged += run.salvaged;
        degraded += run.degraded;
        ++runs;
        g_progress.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  const std::uint64_t faults_injected = failpoint::FiredCount() - fired_before;
  watchdog_stop.store(true, std::memory_order_relaxed);
  watchdog.join();

  std::printf("skypref_chaos OK: runs=%" PRIu64 " faults_injected=%" PRIu64
              " casualties=%" PRIu64 " retried=%" PRIu64 " salvaged=%" PRIu64
              " degraded=%" PRIu64 " truncated=%" PRIu64 " watchdog_trips=%" PRIu64
              "\n",
              runs, faults_injected, casualties, retried, salvaged, degraded,
              truncated_runs, g_watchdog_trips.load());

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"seed\": %" PRIu64 ",\n"
                 "  \"schedules\": %" PRIu64 ",\n"
                 "  \"schedules_armed\": %" PRIu64 ",\n"
                 "  \"runs\": %" PRIu64 ",\n"
                 "  \"faults_injected\": %" PRIu64 ",\n"
                 "  \"casualties\": %" PRIu64 ",\n"
                 "  \"retried_targets\": %" PRIu64 ",\n"
                 "  \"salvaged_targets\": %" PRIu64 ",\n"
                 "  \"degraded_targets\": %" PRIu64 ",\n"
                 "  \"truncated_runs\": %" PRIu64 ",\n"
                 "  \"watchdog_trips\": %" PRIu64 ",\n"
                 "  \"failpoints_compiled_in\": %s\n"
                 "}\n",
                 seed, schedules, schedules_armed, runs, faults_injected,
                 casualties, retried, salvaged, degraded, truncated_runs,
                 g_watchdog_trips.load(), failpoints_on ? "true" : "false");
    std::fclose(out);
  }
  return 0;
}
