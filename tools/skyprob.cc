// skyprob — command-line front end for the skypref library.
//
//   skyprob generate --kind=uniform|blockzipf|nursery [options] --out=FILE
//   skyprob solve --data=FILE [--prefs=FILE | --pref-seed=N]
//                 --target=N [--algo=det|det+|sam|sam+|sac|adaptive|bounds]
//   skyprob skyline --data=FILE --tau=T [--method=exact|sample]
//   skyprob topk --data=FILE --k=K [--method=race|sample]
//   skyprob skycube --data=FILE --target=N
//   skyprob inspect --data=FILE --target=N
//
// Datasets are CSV with a header of dimension names (see io/dataset_io.h);
// preferences are either an explicit preference CSV or an implicit hashed
// model derived from --pref-seed.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/io/csv.h"
#include "src/skypref.h"
#include "src/util/strings.h"

namespace {

using namespace skypref;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      std::exit(2);
    }
    arg.remove_prefix(2);
    std::size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      args.flags[std::string(arg)] = "true";
    } else {
      args.flags[std::string(arg.substr(0, eq))] =
          std::string(arg.substr(eq + 1));
    }
  }
  return args;
}

std::string FlagOr(const Args& args, const std::string& key,
                   const std::string& fallback) {
  auto it = args.flags.find(key);
  return it == args.flags.end() ? fallback : it->second;
}

std::int64_t IntFlagOr(const Args& args, const std::string& key,
                       std::int64_t fallback) {
  auto it = args.flags.find(key);
  if (it == args.flags.end()) return fallback;
  auto parsed = ParseInt64(it->second);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad integer for --%s: %s\n", key.c_str(),
                 it->second.c_str());
    std::exit(2);
  }
  return parsed.value();
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  skyprob generate --kind=uniform|blockzipf|nursery --out=FILE\n"
      "                   [--objects=N] [--dims=D] [--values=V]\n"
      "                   [--block-size=B] [--seed=S]\n"
      "  skyprob solve    --data=FILE --target=N\n"
      "                   [--prefs=FILE | --pref-seed=S]\n"
      "                   [--algo=det|det+|sam|sam+|sac]\n"
      "                   [--epsilon=E] [--delta=D] [--samples=M] "
      "[--seed=S]\n"
      "  skyprob skyline  --data=FILE --tau=T [--method=exact|sample]\n"
      "  skyprob topk     --data=FILE --k=K [--method=race|sample]\n"
      "  skyprob skycube  --data=FILE --target=N\n"
      "  skyprob inspect  --data=FILE --target=N\n");
  return 2;
}

Domain SyntheticDomain(const Dataset& data) {
  Domain domain(data.dimensions());
  for (DimensionId j = 0; j < data.dimensions(); ++j) {
    for (ValueId v = 0; v < data.value_bound(j); ++v) {
      std::string value_name = "v";
      value_name += std::to_string(v);
      domain.InternValue(j, value_name).status().CheckOK();
    }
  }
  return domain;
}

int RunGenerate(const Args& args) {
  std::string kind = FlagOr(args, "kind", "uniform");
  std::string out = FlagOr(args, "out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate requires --out=FILE\n");
    return 2;
  }
  Dataset data(1);
  Domain domain(std::size_t{1});
  if (kind == "uniform") {
    UniformOptions options;
    options.objects = static_cast<std::size_t>(IntFlagOr(args, "objects", 50));
    options.dimensions = static_cast<std::size_t>(IntFlagOr(args, "dims", 5));
    options.values_per_dimension =
        static_cast<ValueId>(IntFlagOr(args, "values", 10));
    options.seed = static_cast<std::uint64_t>(IntFlagOr(args, "seed", 1));
    auto generated = GenerateUniform(options);
    generated.status().CheckOK();
    data = std::move(generated).value();
    domain = SyntheticDomain(data);
  } else if (kind == "blockzipf") {
    BlockZipfOptions options;
    options.objects =
        static_cast<std::size_t>(IntFlagOr(args, "objects", 1000));
    options.dimensions = static_cast<std::size_t>(IntFlagOr(args, "dims", 5));
    options.block_size =
        static_cast<std::size_t>(IntFlagOr(args, "block-size", 12));
    options.values_per_block =
        static_cast<ValueId>(IntFlagOr(args, "values", 6));
    options.seed = static_cast<std::uint64_t>(IntFlagOr(args, "seed", 1));
    auto generated = GenerateBlockZipf(options);
    generated.status().CheckOK();
    data = std::move(generated).value();
    domain = SyntheticDomain(data);
  } else if (kind == "nursery") {
    auto generated =
        GenerateNurseryProjection(static_cast<std::size_t>(
            IntFlagOr(args, "dims", 8)));
    generated.status().CheckOK();
    data = std::move(generated.value().dataset);
    domain = std::move(generated.value().domain);
  } else {
    std::fprintf(stderr, "unknown --kind=%s\n", kind.c_str());
    return 2;
  }
  if (FlagOr(args, "format", "csv") == "binary" ||
      (out.size() > 5 && out.compare(out.size() - 5, 5, ".skyd") == 0)) {
    SaveDatasetBinary(out, data).CheckOK();
  } else {
    SaveDatasetFile(out, data, domain).CheckOK();
  }
  std::printf("wrote %zu objects x %zu dims to %s\n", data.size(),
              data.dimensions(), out.c_str());
  return 0;
}

struct LoadedInstance {
  LoadedDataset loaded;
  TablePreferenceModel table_prefs;
  HashedPreferenceModel hashed_prefs{1,
                                     HashedPreferenceModel::Style::kTotalUniform};
  bool use_table = false;

  const PreferenceModel& prefs() const {
    if (use_table) return table_prefs;
    return hashed_prefs;
  }
};

LoadedInstance LoadInstance(const Args& args) {
  LoadedInstance instance;
  std::string data_path = FlagOr(args, "data", "");
  if (data_path.empty()) {
    std::fprintf(stderr, "missing --data=FILE\n");
    std::exit(2);
  }
  if (data_path.size() > 5 &&
      data_path.compare(data_path.size() - 5, 5, ".skyd") == 0) {
    auto binary = LoadDatasetBinary(data_path);
    binary.status().CheckOK();
    instance.loaded.dataset = std::move(binary).value();
    instance.loaded.domain = SyntheticDomain(instance.loaded.dataset);
  } else {
    auto loaded = LoadDatasetFile(data_path);
    loaded.status().CheckOK();
    instance.loaded = std::move(loaded).value();
  }

  std::string prefs_path = FlagOr(args, "prefs", "");
  if (!prefs_path.empty()) {
    auto contents = ReadFile(prefs_path);
    contents.status().CheckOK();
    auto model = PreferencesFromCsv(contents.value(), instance.loaded.domain);
    model.status().CheckOK();
    instance.table_prefs = std::move(model).value();
    instance.use_table = true;
  } else {
    instance.hashed_prefs = HashedPreferenceModel(
        static_cast<std::uint64_t>(IntFlagOr(args, "pref-seed", 1)),
        HashedPreferenceModel::Style::kTotalUniform);
  }
  return instance;
}

int RunSolve(const Args& args) {
  LoadedInstance instance = LoadInstance(args);
  ObjectId target = static_cast<ObjectId>(IntFlagOr(args, "target", 0));
  std::string algo = FlagOr(args, "algo", "det+");

  auto solver_or =
      SkylineSolver::Create(instance.loaded.dataset, instance.prefs());
  solver_or.status().CheckOK();
  const SkylineSolver& solver = solver_or.value();

  SolverOptions options;
  options.preprocess = algo == "det+" || algo == "sam+";
  options.monte_carlo.epsilon =
      std::atof(FlagOr(args, "epsilon", "0.01").c_str());
  options.monte_carlo.delta = std::atof(FlagOr(args, "delta", "0.01").c_str());
  options.monte_carlo.samples =
      static_cast<std::uint64_t>(IntFlagOr(args, "samples", 0));
  options.monte_carlo.seed =
      static_cast<std::uint64_t>(IntFlagOr(args, "seed", 42));

  Result<double> sky = Status::Internal("unset");
  SolveStats stats;
  if (algo == "det" || algo == "det+") {
    sky = solver.Exact(target, options, &stats);
  } else if (algo == "sam" || algo == "sam+") {
    sky = solver.MonteCarlo(target, options, &stats);
  } else if (algo == "sac") {
    sky = solver.Independent(target);
  } else if (algo == "adaptive") {
    AdaptiveOptions adaptive;
    adaptive.epsilon = options.monte_carlo.epsilon;
    adaptive.delta = options.monte_carlo.delta;
    adaptive.seed = options.monte_carlo.seed;
    auto result = AdaptiveMonteCarloSkylineProbability(
        instance.loaded.dataset, target, instance.prefs(), adaptive);
    result.status().CheckOK();
    std::printf("sky(object %zu) = %.6g +- %.4g   [adaptive, %llu samples%s]\n",
                target, result->estimate, result->radius,
                static_cast<unsigned long long>(result->samples),
                result->hit_cap ? ", hit Hoeffding cap" : "");
    return 0;
  } else if (algo == "bounds") {
    BoundsOptions bounds_options;
    bounds_options.max_level =
        static_cast<std::size_t>(IntFlagOr(args, "max-level", 3));
    auto bounds = BoundedSkylineProbabilityPreprocessed(
        instance.loaded.dataset, target, instance.prefs(), bounds_options);
    bounds.status().CheckOK();
    std::printf("sky(object %zu) in [%.6g, %.6g]   [certified, level %zu, "
                "%llu terms%s]\n",
                target, bounds->lower, bounds->upper, bounds->level,
                static_cast<unsigned long long>(bounds->terms_computed),
                bounds->exact ? ", exact" : "");
    return 0;
  } else {
    std::fprintf(stderr, "unknown --algo=%s\n", algo.c_str());
    return 2;
  }
  sky.status().CheckOK();
  std::printf("sky(object %zu) = %.6g   [algo=%s]\n", target, sky.value(),
              algo.c_str());
  if (algo != "sac") {
    std::printf("candidates=%zu after_absorption=%zu groups=%zu "
                "largest_group=%zu subsets=%llu samples=%llu\n",
                stats.candidates, stats.after_absorption, stats.groups,
                stats.largest_group,
                static_cast<unsigned long long>(stats.subsets_visited),
                static_cast<unsigned long long>(stats.samples_drawn));
  }
  return 0;
}

int RunInspect(const Args& args) {
  LoadedInstance instance = LoadInstance(args);
  const Dataset& data = instance.loaded.dataset;
  ObjectId target = static_cast<ObjectId>(IntFlagOr(args, "target", 0));
  if (target >= data.size()) {
    std::fprintf(stderr, "target out of range\n");
    return 2;
  }
  std::printf("dataset: %zu objects x %zu dims\n", data.size(),
              data.dimensions());
  for (DimensionId j = 0; j < data.dimensions(); ++j) {
    std::printf("  %-16s %u distinct values\n",
                instance.loaded.domain.dimension_name(j).c_str(),
                data.value_bound(j));
  }
  std::vector<ObjectId> candidates;
  for (ObjectId i = 0; i < data.size(); ++i) {
    if (i != target) candidates.push_back(i);
  }
  AbsorptionStats absorption;
  std::vector<ObjectId> survivors =
      AbsorbCandidates(data, target, candidates, &absorption);
  auto groups = PartitionCandidates(data, target, survivors);
  std::size_t largest = 0;
  for (const auto& group : groups) largest = std::max(largest, group.size());
  std::printf("target %zu: %zu candidates, %zu absorbed, %zu groups, "
              "largest group %zu\n",
              target, absorption.input_candidates, absorption.absorbed,
              groups.size(), largest);
  return 0;
}

int RunSkyline(const Args& args) {
  LoadedInstance instance = LoadInstance(args);
  double tau = std::atof(FlagOr(args, "tau", "0.5").c_str());
  std::string method = FlagOr(args, "method", "exact");
  std::vector<ObjectId> skyline;
  if (method == "exact") {
    auto result =
        ExactProbabilisticSkyline(instance.loaded.dataset, instance.prefs(),
                                  tau);
    result.status().CheckOK();
    skyline = std::move(result).value();
  } else if (method == "sample") {
    AllWorldsOptions options;
    options.seed = static_cast<std::uint64_t>(IntFlagOr(args, "seed", 42));
    options.samples =
        static_cast<std::uint64_t>(IntFlagOr(args, "samples", 0));
    auto result = ProbabilisticSkyline(instance.loaded.dataset,
                                       instance.prefs(), tau, options);
    result.status().CheckOK();
    skyline = std::move(result).value();
  } else {
    std::fprintf(stderr, "unknown --method=%s\n", method.c_str());
    return 2;
  }
  std::printf("probabilistic skyline (tau=%.3f, %s): %zu objects\n", tau,
              method.c_str(), skyline.size());
  for (ObjectId id : skyline) std::printf("  %zu\n", id);
  return 0;
}

int RunTopK(const Args& args) {
  LoadedInstance instance = LoadInstance(args);
  std::size_t k = static_cast<std::size_t>(IntFlagOr(args, "k", 5));
  std::string method = FlagOr(args, "method", "race");
  if (method == "race") {
    TopKRaceOptions options;
    options.seed = static_cast<std::uint64_t>(IntFlagOr(args, "seed", 42));
    auto result =
        TopKSkylineRace(instance.loaded.dataset, instance.prefs(), k, options);
    result.status().CheckOK();
    std::printf("top-%zu by skyline probability (race, %s, %llu worlds):\n",
                k, result->resolved ? "resolved" : "ties at the boundary",
                static_cast<unsigned long long>(result->worlds));
    for (ObjectId id : result->topk) {
      std::printf("  %-8zu %.4f\n", id, result->estimates[id]);
    }
    return 0;
  }
  if (method == "sample") {
    AllWorldsOptions options;
    options.seed = static_cast<std::uint64_t>(IntFlagOr(args, "seed", 42));
    options.samples =
        static_cast<std::uint64_t>(IntFlagOr(args, "samples", 0));
    auto result =
        TopKSkyline(instance.loaded.dataset, instance.prefs(), k, options);
    result.status().CheckOK();
    std::printf("top-%zu by skyline probability (fixed budget):\n", k);
    for (const auto& [id, estimate] : result.value()) {
      std::printf("  %-8zu %.4f\n", id, estimate);
    }
    return 0;
  }
  std::fprintf(stderr, "unknown --method=%s\n", method.c_str());
  return 2;
}

int RunSkycube(const Args& args) {
  LoadedInstance instance = LoadInstance(args);
  ObjectId target = static_cast<ObjectId>(IntFlagOr(args, "target", 0));
  auto cube =
      ProbabilisticSkycube(instance.loaded.dataset, target, instance.prefs());
  cube.status().CheckOK();
  std::printf("probabilistic skycube of object %zu (%zu cells):\n", target,
              cube->size());
  for (const SkycubeCell& cell : cube.value()) {
    std::printf("  dims {");
    bool first = true;
    for (DimensionId j = 0; j < instance.loaded.dataset.dimensions(); ++j) {
      if (cell.mask & (SubspaceMask{1} << j)) {
        std::printf("%s%s", first ? "" : ",",
                    instance.loaded.domain.dimension_name(j).c_str());
        first = false;
      }
    }
    std::printf("}: %.6g\n", cell.probability);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.command == "generate") return RunGenerate(args);
  if (args.command == "solve") return RunSolve(args);
  if (args.command == "skyline") return RunSkyline(args);
  if (args.command == "topk") return RunTopK(args);
  if (args.command == "skycube") return RunSkycube(args);
  if (args.command == "inspect") return RunInspect(args);
  return Usage();
}
