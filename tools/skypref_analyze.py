#!/usr/bin/env python3
"""AST-level analyzer for skypref's determinism and cancellation contracts.

Where tools/skypref_lint.py pattern-matches lines, this tool parses real
C++ through libclang and checks properties that need structure — loop
nesting, lambda captures, operand types, call graphs. Four checks:

  unordered-iter    Range-for over std::unordered_map / unordered_set in
                    src/core/ or src/model/ whose body accumulates into a
                    float or appends to an output container. Hash-map
                    iteration order depends on insertion history and
                    libstdc++ version, so anything order-sensitive fed
                    from it is silently nondeterministic. Iterate a
                    sorted key vector instead (see
                    VoteAggregator::VotedPairs).

  cancel-poll       A loop in an engine translation unit that does
                    per-world / per-subset work (calls SampleWorld,
                    Survives, Dfs, ...) with no cancellation poll
                    (CheckStop / cancelled() / Expired(), directly or
                    through any function it calls) on any path, and no
                    polling ancestor loop. Solves are exponential by
                    design; an unpollable loop makes the solve
                    uncancellable. Loops inside lambdas handed to a
                    polling driver (RunDeterministicBlocks) are exempt —
                    the driver polls at block boundaries.

  kahan-discipline  float/double `+=` accumulation inside a loop in
                    src/core/ outside src/util/kahan.h. Long plain sums
                    drift; route them through KahanSum / Accumulator, or
                    annotate why plain summation is part of the numeric
                    contract (fixed-order bit-compatibility, integer
                    counts, scheduling heuristics).

  prng-capture      A lambda handed to ThreadPool::ParallelFor that
                    captures PRNG state (Rng, OctoRng, SplitMix64,
                    Xoshiro*) declared outside the lambda by reference.
                    Concurrent draws from one generator are a data race
                    AND break block determinism; seed a fresh generator
                    per chunk from the chunk index instead.

Suppress a finding with a comment on the reported line, or on the run of
`//` comment lines directly above it:

    // skypref-analyze: allow(<check>)   -- and say why

Usage:
  tools/skypref_analyze.py [paths...]   # default: src/core src/model

Exits 0 when clean, 1 on findings, 2 on usage errors, and 77 (the ctest
skip convention) when libclang python bindings are unavailable — unless
SKYPREF_REQUIRE_ANALYZE=1, which turns that into a hard error for CI.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, NamedTuple, Optional, Set, Tuple

CHECK_UNORDERED_ITER = "unordered-iter"
CHECK_CANCEL_POLL = "cancel-poll"
CHECK_KAHAN = "kahan-discipline"
CHECK_PRNG_CAPTURE = "prng-capture"

ALLOW_RE = re.compile(r"skypref-analyze:\s*allow\(([a-z\-]+)\)")

# Engine translation units (by repo-relative path) whose loops must stay
# cancellable. Matches the files that implement the solve ladder.
ENGINE_FILES = {
    "src/core/exact.h",
    "src/core/exact.cc",
    "src/core/parallel.h",
    "src/core/parallel.cc",
    "src/core/monte_carlo.cc",
    "src/core/sam_parallel.cc",
    "src/core/sam_bitslice.cc",
    "src/core/sam_internal.h",
    "src/core/sam_internal.cc",
    "src/core/resilient.cc",
    "src/core/all_worlds.cc",
}

# Calls that mark a loop as doing per-world / per-subset solve work.
WORK_MARKERS = {
    "SampleWorld", "SampleFlatWorld", "NextWorld", "Survives",
    "BatchSurvives", "TaskDfs", "Dfs", "SampleChunk",
    "BatchChunkSurvivors",
}

# Direct cancellation polls. `cancelled` is CancelToken::cancelled(),
# `Expired` is Deadline::Expired(); CheckStop wraps both.
POLL_MARKERS = {"CheckStop", "cancelled", "Expired"}

# Body calls that make unordered iteration order observable.
ORDER_SINKS = {"push_back", "emplace_back", "insert", "append", "Add", "Set"}

PRNG_TYPE_RE = re.compile(r"\b(Rng|OctoRng|SplitMix64|Xoshiro\w*)\b")

FLOAT_TYPES = {"float", "double", "long double"}

PARSE_ARGS = ["-x", "c++", "-std=c++20"]


def load_cindex():
    """Imports clang.cindex and points it at a loadable libclang.
    Returns the module, or None when the bindings or the shared library
    are missing (the caller decides whether that is a skip or an error).
    """
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None

    import ctypes
    import ctypes.util

    candidates: List[Optional[str]] = []
    env = os.environ.get("SKYPREF_LIBCLANG")
    if env:
        candidates.append(env)
    found = ctypes.util.find_library("clang")
    if found:
        candidates.append(found)
    for ver in range(21, 12, -1):
        candidates.extend([
            f"libclang-{ver}.so.{ver}",
            f"libclang-{ver}.so.1",
            f"libclang.so.{ver}",
            f"libclang-{ver}.so",
        ])
    candidates.append("libclang.so")
    candidates.append(None)  # whatever the bindings default to

    for candidate in candidates:
        if candidate is not None:
            try:
                ctypes.CDLL(candidate)
            except OSError:
                continue
            try:
                cindex.Config.set_library_file(candidate)
            except Exception:  # already loaded; keep what works
                pass
        try:
            cindex.Index.create()
            return cindex
        except Exception:
            continue
    return None


class Finding(NamedTuple):
    path: Path  # repo-relative
    line: int
    check: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


class FileContext:
    """Caches per-file source lines for suppression lookups."""

    def __init__(self) -> None:
        self._lines: Dict[Path, List[str]] = {}

    def lines(self, path: Path) -> List[str]:
        if path not in self._lines:
            try:
                self._lines[path] = path.read_text(
                    encoding="utf-8").split("\n")
            except OSError:
                self._lines[path] = []
        return self._lines[path]

    def is_suppressed(self, path: Path, line: int, check: str) -> bool:
        """True if an allow(<check>) comment sits on `line` or on the
        contiguous run of //-comment lines directly above it."""
        lines = self.lines(path)
        if not 1 <= line <= len(lines):
            return False

        def allows(text: str) -> bool:
            return any(m.group(1) == check
                       for m in ALLOW_RE.finditer(text))

        if allows(lines[line - 1]):
            return True
        i = line - 2
        while i >= 0 and lines[i].strip().startswith("//"):
            if allows(lines[i]):
                return True
            i -= 1
        return False


class Analyzer:
    def __init__(self, cindex, repo_root: Path) -> None:
        self.cindex = cindex
        self.repo_root = repo_root
        self.index = cindex.Index.create()
        self.files = FileContext()
        self._seen: Set[Tuple[str, int, str]] = set()
        self.findings: List[Finding] = []
        self.parse_errors: List[str] = []

    # ---------------- plumbing ----------------

    def rel(self, cursor) -> Optional[Path]:
        """Repo-relative path of the cursor's file, or None if it lies
        outside the repo (system headers)."""
        loc = cursor.location
        if loc.file is None:
            return None
        try:
            return Path(loc.file.name).resolve().relative_to(self.repo_root)
        except ValueError:
            return None

    def add(self, cursor, check: str, message: str) -> None:
        rel = self.rel(cursor)
        if rel is None:
            return
        line = cursor.location.line
        key = (rel.as_posix(), line, check)
        if key in self._seen:
            return
        self._seen.add(key)
        abs_path = self.repo_root / rel
        if self.files.is_suppressed(abs_path, line, check):
            return
        self.findings.append(Finding(rel, line, check, message))

    def tokens(self, tu, extent) -> List:
        return list(tu.get_tokens(extent=extent))

    def called_names(self, tu, extent) -> Set[str]:
        """Identifiers followed by '(' within the extent — the names this
        region calls (token-level, so macros and uninstantiated templates
        are seen too). Comments are skipped."""
        kinds = self.cindex.TokenKind
        toks = [t for t in self.tokens(tu, extent)
                if t.kind != kinds.COMMENT]
        names: Set[str] = set()
        for tok, nxt in zip(toks, toks[1:]):
            if (tok.kind == kinds.IDENTIFIER
                    and nxt.spelling == "("):
                names.add(tok.spelling)
        return names

    # ---------------- traversal ----------------

    LOOP_KINDS = None  # set in run()
    FUNC_KINDS = None

    def run(self, tu_paths: List[Path]) -> None:
        ck = self.cindex.CursorKind
        self.LOOP_KINDS = {ck.FOR_STMT, ck.CXX_FOR_RANGE_STMT,
                           ck.WHILE_STMT, ck.DO_STMT}
        self.FUNC_KINDS = {ck.FUNCTION_DECL, ck.CXX_METHOD,
                           ck.FUNCTION_TEMPLATE, ck.CONSTRUCTOR,
                           ck.DESTRUCTOR}
        for path in tu_paths:
            args = PARSE_ARGS + [f"-I{self.repo_root}"]
            try:
                tu = self.index.parse(str(path), args=args)
            except self.cindex.TranslationUnitLoadError as err:
                self.parse_errors.append(f"{path}: {err}")
                continue
            fatal = [d for d in tu.diagnostics if d.severity >= 4]
            if fatal:
                self.parse_errors.append(
                    f"{path}: {fatal[0].spelling} "
                    f"(+{len(fatal) - 1} more)" if len(fatal) > 1
                    else f"{path}: {fatal[0].spelling}")
            self.check_tu(tu)

    def check_tu(self, tu) -> None:
        ck = self.cindex.CursorKind
        parents: Dict = {}
        loops = []
        compound_assigns = []
        parallel_for_calls = []
        functions = []

        # Iterative walk: solver ASTs nest deeper than Python's default
        # recursion limit.
        stack = [(tu.cursor, None)]
        while stack:
            cursor, parent = stack.pop()
            parents[cursor.hash] = parent
            kind = cursor.kind
            if kind in self.LOOP_KINDS:
                loops.append(cursor)
            elif kind == ck.COMPOUND_ASSIGNMENT_OPERATOR:
                compound_assigns.append(cursor)
            elif kind == ck.CALL_EXPR and cursor.spelling == "ParallelFor":
                parallel_for_calls.append(cursor)
            elif kind in self.FUNC_KINDS and cursor.is_definition():
                functions.append(cursor)
            for child in cursor.get_children():
                stack.append((child, cursor))

        polls = self.polls_closure(tu, functions)
        for loop in loops:
            self.check_unordered_iter(tu, loop)
            self.check_cancel_poll(tu, loop, parents, polls)
        for assign in compound_assigns:
            self.check_kahan(tu, assign, parents)
        for call in parallel_for_calls:
            self.check_prng_capture(tu, call)

    # ---------------- check: cancel-poll ----------------

    def polls_closure(self, tu, functions) -> Set[str]:
        """Names of in-TU functions that poll cancellation, directly or
        through any same-TU function they call (transitive closure over
        the name-based call graph)."""
        calls: Dict[str, Set[str]] = {}
        direct: Set[str] = set()
        for fn in functions:
            name = fn.spelling
            if not name:
                continue
            called = self.called_names(tu, fn.extent)
            calls.setdefault(name, set()).update(called)
            if called & POLL_MARKERS:
                direct.add(name)
        closure = set(direct)
        changed = True
        while changed:
            changed = False
            for name, called in calls.items():
                if name not in closure and called & closure:
                    closure.add(name)
                    changed = True
        return closure

    def loop_body_extent(self, loop):
        """Extent of the loop's body (last child); falls back to the full
        loop extent. For the poll/work scans the difference only matters
        for for-headers, which cannot hide a poll anyway."""
        children = list(loop.get_children())
        return children[-1].extent if children else loop.extent

    def check_cancel_poll(self, tu, loop, parents, polls: Set[str]) -> None:
        rel = self.rel(loop)
        if rel is None or rel.as_posix() not in ENGINE_FILES:
            return
        poll_names = polls | POLL_MARKERS
        body = self.loop_body_extent(loop)
        called = self.called_names(tu, body)
        if not called & WORK_MARKERS:
            return
        if called & poll_names:
            return
        # A polling ancestor loop in the same function bounds the gap:
        # the outer iteration polls, the inner loop is one work unit.
        ck = self.cindex.CursorKind
        cursor = parents.get(loop.hash)
        delegated = False
        while cursor is not None:
            kind = cursor.kind
            if kind in self.LOOP_KINDS:
                outer = self.called_names(
                    tu, self.loop_body_extent(cursor))
                if outer & poll_names:
                    return
            if kind == ck.LAMBDA_EXPR:
                # Exempt loops inside lambdas handed to a polling driver
                # (e.g. RunDeterministicBlocks polls between blocks).
                call = parents.get(cursor.hash)
                while call is not None and call.kind != ck.CALL_EXPR:
                    call = parents.get(call.hash)
                if call is not None and call.spelling in polls:
                    delegated = True
            if kind in self.FUNC_KINDS:
                break
            cursor = parents.get(cursor.hash)
        if delegated:
            return
        self.add(loop, CHECK_CANCEL_POLL,
                 "engine loop does per-world work with no cancellation "
                 "poll on any path (call CheckStop / a polling helper at "
                 "a bounded cadence)")

    # ---------------- check: unordered-iter ----------------

    def check_unordered_iter(self, tu, loop) -> None:
        ck = self.cindex.CursorKind
        if loop.kind != ck.CXX_FOR_RANGE_STMT:
            return
        rel = self.rel(loop)
        if rel is None:
            return
        posix = rel.as_posix()
        if not (posix.startswith("src/core/")
                or posix.startswith("src/model/")):
            return
        children = list(loop.get_children())
        if len(children) < 2:
            return
        body = children[-1]
        over_unordered = False
        for child in children[:-1]:
            spelling = child.type.get_canonical().spelling
            if "unordered_map<" in spelling or "unordered_set<" in spelling:
                over_unordered = True
                break
        if not over_unordered:
            return
        sink_line = self.order_sensitive_sink(body)
        if sink_line is None:
            return
        self.add(loop, CHECK_UNORDERED_ITER,
                 "range-for over an unordered container feeds "
                 f"order-sensitive output (line {sink_line}); iterate a "
                 "sorted key list instead")

    def order_sensitive_sink(self, body) -> Optional[int]:
        """Line of the first float accumulation or container append in
        the loop body, or None."""
        ck = self.cindex.CursorKind
        best: Optional[int] = None
        stack = [body]
        while stack:
            cursor = stack.pop()
            kind = cursor.kind
            hit = None
            if kind == ck.COMPOUND_ASSIGNMENT_OPERATOR:
                lhs = next(cursor.get_children(), None)
                if (lhs is not None
                        and lhs.type.get_canonical().spelling
                        in FLOAT_TYPES):
                    hit = cursor.location.line
            elif kind == ck.CALL_EXPR and cursor.spelling in ORDER_SINKS:
                hit = cursor.location.line
            if hit is not None and (best is None or hit < best):
                best = hit
            stack.extend(cursor.get_children())
        return best

    # ---------------- check: kahan-discipline ----------------

    def check_kahan(self, tu, assign, parents) -> None:
        rel = self.rel(assign)
        if rel is None:
            return
        posix = rel.as_posix()
        # src/util/kahan.h (the compensated accumulators themselves) is
        # outside src/core, so the implementation's own += stays exempt.
        if not posix.startswith("src/core/"):
            return
        kinds = self.cindex.TokenKind
        ops = [t.spelling for t in self.tokens(tu, assign.extent)
               if t.kind == kinds.PUNCTUATION]
        if "+=" not in ops:
            return
        lhs = next(assign.get_children(), None)
        if lhs is None:
            return
        if lhs.type.get_canonical().spelling not in FLOAT_TYPES:
            return
        cursor = parents.get(assign.hash)
        in_loop = False
        while cursor is not None:
            if cursor.kind in self.LOOP_KINDS:
                in_loop = True
                break
            if cursor.kind in self.FUNC_KINDS:
                break
            cursor = parents.get(cursor.hash)
        if not in_loop:
            return
        self.add(assign, CHECK_KAHAN,
                 "plain floating-point += accumulation in a loop; use "
                 "KahanSum/Accumulator, or annotate why plain summation "
                 "is part of the numeric contract")

    # ---------------- check: prng-capture ----------------

    def lambda_captures(self, tu, lam) -> Tuple[Optional[str], Dict[str, str]]:
        """Parses the capture introducer tokens. Returns (default, map of
        name -> 'ref'|'value'); default is '&', '=', or None."""
        kinds = self.cindex.TokenKind
        toks = [t for t in self.tokens(tu, lam.extent)
                if t.kind != kinds.COMMENT]
        spellings = [t.spelling for t in toks]
        try:
            start = spellings.index("[")
            end = spellings.index("]", start)
        except ValueError:
            return None, {}
        intro = spellings[start + 1:end]
        default: Optional[str] = None
        named: Dict[str, str] = {}
        entries: List[List[str]] = [[]]
        for s in intro:
            if s == ",":
                entries.append([])
            else:
                entries[-1].append(s)
        for entry in entries:
            if not entry:
                continue
            if entry == ["&"]:
                default = "&"
            elif entry == ["="]:
                default = "="
            elif entry[0] == "&":
                if len(entry) > 1:
                    named[entry[1]] = "ref"
            elif entry[0] == "this" or entry[0] == "*":
                continue
            else:
                named[entry[0]] = "value"
        return default, named

    def check_prng_capture(self, tu, call) -> None:
        ck = self.cindex.CursorKind
        rel = self.rel(call)
        if rel is None:
            return
        lambdas = []
        stack = list(call.get_children())
        while stack:
            cursor = stack.pop()
            if cursor.kind == ck.LAMBDA_EXPR:
                lambdas.append(cursor)
                continue  # nested lambdas handled via their own calls
            stack.extend(cursor.get_children())
        for lam in lambdas:
            default, named = self.lambda_captures(tu, lam)
            offending = self.captured_prng_by_ref(lam, default, named)
            if offending:
                self.add(lam, CHECK_PRNG_CAPTURE,
                         f"lambda handed to ParallelFor captures PRNG "
                         f"state '{offending}' by reference; seed a "
                         "fresh generator per chunk from the chunk "
                         "index instead")

    def captured_prng_by_ref(self, lam, default, named) -> Optional[str]:
        ck = self.cindex.CursorKind
        lam_start = lam.extent.start.offset
        stack = list(lam.get_children())
        while stack:
            cursor = stack.pop()
            stack.extend(cursor.get_children())
            if cursor.kind != ck.DECL_REF_EXPR:
                continue
            ref = cursor.referenced
            if ref is None or ref.kind not in (ck.VAR_DECL, ck.PARM_DECL):
                continue
            loc = ref.location
            if loc.file is None or loc.offset >= lam_start:
                continue  # declared inside the lambda (or unknown)
            type_names = (ref.type.spelling + " "
                          + ref.type.get_canonical().spelling)
            if not PRNG_TYPE_RE.search(type_names):
                continue
            name = ref.spelling
            mode = named.get(name)
            if mode == "value":
                continue
            if mode == "ref" or default == "&":
                return name
        return None


def iter_tus(paths: Iterable[Path], repo_root: Path) -> List[Path]:
    out: List[Path] = []
    for p in paths:
        p = p if p.is_absolute() else repo_root / p
        if p.is_file():
            if p.suffix in (".cc", ".cpp"):
                out.append(p)
        elif p.is_dir():
            out.extend(sorted(c for c in p.rglob("*.cc") if c.is_file()))
        else:
            raise FileNotFoundError(p)
    return out


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=["src/core", "src/model"],
                        help="translation units or directories to analyze "
                             "(default: src/core src/model)")
    parser.add_argument("--repo-root", default=None,
                        help="repo root for relative paths and -I "
                             "(default: parent of tools/)")
    args = parser.parse_args(argv)

    repo_root = Path(args.repo_root).resolve() if args.repo_root \
        else Path(__file__).resolve().parent.parent

    cindex = load_cindex()
    if cindex is None:
        required = os.environ.get("SKYPREF_REQUIRE_ANALYZE") == "1"
        stream = sys.stderr if required else sys.stdout
        print("skypref_analyze: libclang python bindings unavailable"
              + (" (required by SKYPREF_REQUIRE_ANALYZE=1)" if required
                 else "; skipping"),
              file=stream)
        return 2 if required else 77

    try:
        tus = iter_tus([Path(p) for p in args.paths], repo_root)
    except FileNotFoundError as err:
        print(f"skypref_analyze: no such path: {err.args[0]}",
              file=sys.stderr)
        return 2

    analyzer = Analyzer(cindex, repo_root)
    analyzer.run(tus)

    for err in analyzer.parse_errors:
        print(f"skypref_analyze: parse warning: {err}", file=sys.stderr)
    findings = sorted(analyzer.findings,
                      key=lambda f: (f.path.as_posix(), f.line, f.check))
    for finding in findings:
        print(finding)
    if findings:
        print(f"skypref_analyze: {len(findings)} finding(s) in "
              f"{len(tus)} translation unit(s)", file=sys.stderr)
        return 1
    print(f"skypref_analyze: clean ({len(tus)} translation units)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
